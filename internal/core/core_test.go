package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// mkDataset builds a random geo-social dataset. disconnect splits the graph
// into two components; unlocated is the fraction of users without location.
func mkDataset(t testing.TB, rng *rand.Rand, n int, unlocated float64, disconnect bool) *dataset.Dataset {
	t.Helper()
	b := graph.NewBuilder(n)
	half := n / 2
	sameSide := func(u, v int) bool { return (u < half) == (v < half) }
	for v := 1; v < n; v++ {
		if disconnect && v == half {
			continue
		}
		u := rng.Intn(v)
		if disconnect && !sameSide(u, v) {
			if v < half {
				u = rng.Intn(v)
			} else {
				u = half + rng.Intn(v-half)
			}
			if u == v {
				continue
			}
		}
		_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.05+rng.Float64()*2)
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || (disconnect && !sameSide(u, v)) {
			continue
		}
		_ = b.AddEdge(graph.VertexID(u), graph.VertexID(v), 0.05+rng.Float64()*2)
	}
	g := b.MustBuild()
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
		located[i] = rng.Float64() >= unlocated
	}
	ds, err := dataset.New("test", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func mkEngine(t testing.TB, ds *dataset.Dataset, opts Options) *Engine {
	t.Helper()
	if opts.GridS == 0 {
		opts.GridS = 4
	}
	if opts.GridLevels == 0 {
		opts.GridLevels = 2
	}
	if opts.NumLandmarks == 0 {
		opts.NumLandmarks = 4
	}
	e, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func locatedUsers(ds *dataset.Dataset) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located[v] {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{{K: 0, Alpha: 0.5}, {K: -1, Alpha: 0.5}, {K: 3, Alpha: 0}, {K: 3, Alpha: 1}, {K: 3, Alpha: -0.1}, {K: 3, Alpha: 1.5}, {K: 3, Alpha: math.NaN()}}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Params %+v accepted", p)
		}
	}
	if err := (Params{K: 1, Alpha: 0.5}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTopKBasics(t *testing.T) {
	r := newTopK(3)
	if r.Fk() != math.Inf(1) {
		t.Fatal("empty Fk not +Inf")
	}
	if r.Consider(Entry{ID: 1, F: math.Inf(1)}) {
		t.Fatal("infinite f admitted")
	}
	if r.Consider(Entry{ID: 1, F: math.NaN()}) {
		t.Fatal("NaN f admitted")
	}
	for _, e := range []Entry{{ID: 5, F: 5}, {ID: 2, F: 2}, {ID: 9, F: 9}} {
		if !r.Consider(e) {
			t.Fatalf("entry %+v rejected while not full", e)
		}
	}
	if r.Fk() != 9 {
		t.Fatalf("Fk = %v", r.Fk())
	}
	if r.Consider(Entry{ID: 10, F: 9}) { // ties on F break by ID: 10 > 9 loses
		t.Fatal("equal-f higher-id admitted")
	}
	if !r.Consider(Entry{ID: 8, F: 9}) { // same F, lower ID wins
		t.Fatal("equal-f lower-id rejected")
	}
	got := r.Sorted()
	if got[0].ID != 2 || got[1].ID != 5 || got[2].ID != 8 {
		t.Fatalf("Sorted = %+v", got)
	}
}

func TestEngineValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := mkDataset(t, rng, 40, 0.2, false)
	e := mkEngine(t, ds, Options{})
	if _, err := NewEngine(nil, Options{}); err == nil {
		t.Fatal("nil dataset accepted")
	}
	if _, err := e.Query(SFA, -1, Params{K: 3, Alpha: 0.5}); err == nil {
		t.Fatal("negative query user accepted")
	}
	if _, err := e.Query(SFA, 1000, Params{K: 3, Alpha: 0.5}); err == nil {
		t.Fatal("out-of-range query user accepted")
	}
	if _, err := e.Query(SFA, 0, Params{K: 0, Alpha: 0.5}); err == nil {
		t.Fatal("bad params accepted")
	}
	var unloc graph.VertexID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if !ds.Located[v] {
			unloc = graph.VertexID(v)
			break
		}
	}
	if unloc >= 0 {
		if _, err := e.Query(SFA, unloc, Params{K: 3, Alpha: 0.5}); err == nil {
			t.Fatal("unlocated query user accepted")
		}
	}
	if _, err := e.Query(SFACH, locatedUsers(ds)[0], Params{K: 3, Alpha: 0.5}); err == nil {
		t.Fatal("CH variant without BuildCH accepted")
	}
	if _, err := e.Query(Algorithm(99), locatedUsers(ds)[0], Params{K: 3, Alpha: 0.5}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

// sameRanking asserts two results agree on the f-value sequence (identical
// multisets up to float tolerance). IDs may differ only within exact ties.
func sameRanking(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if len(got.Entries) != len(want.Entries) {
		t.Fatalf("%s: %d entries, want %d", label, len(got.Entries), len(want.Entries))
	}
	for i := range got.Entries {
		g, w := got.Entries[i], want.Entries[i]
		if math.Abs(g.F-w.F) > 1e-9 {
			t.Fatalf("%s: rank %d f = %v, want %v", label, i, g.F, w.F)
		}
		// Where f values are strictly distinct, the IDs must match exactly.
		if g.ID != w.ID && math.Abs(g.F-w.F) > 1e-12 {
			t.Fatalf("%s: rank %d id = %d, want %d (f %v vs %v)", label, i, g.ID, w.ID, g.F, w.F)
		}
		// The reported decomposition must be internally consistent.
		if math.Abs(combine(got.Params.Alpha, g.P, g.D)-g.F) > 1e-9 {
			t.Fatalf("%s: rank %d f != α·p+(1-α)·d", label, i)
		}
	}
}

var allNonCHAlgorithms = []Algorithm{SFA, SPA, TSA, TSAQC, TSANoLandmark, AISBID, AISMinus, AIS, AISCache}

func TestAllAlgorithmsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 12; trial++ {
		n := 30 + rng.Intn(120)
		ds := mkDataset(t, rng, n, 0.15*rng.Float64(), trial%3 == 2)
		e := mkEngine(t, ds, Options{
			GridS:      3 + rng.Intn(4),
			GridLevels: 1 + rng.Intn(2),
			CacheT:     5 + rng.Intn(30),
			Seed:       int64(trial),
		})
		users := locatedUsers(ds)
		for probe := 0; probe < 6; probe++ {
			q := users[rng.Intn(len(users))]
			prm := Params{K: 1 + rng.Intn(12), Alpha: 0.05 + 0.9*rng.Float64()}
			want, err := e.Query(BruteForce, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range allNonCHAlgorithms {
				got, err := e.Query(algo, q, prm)
				if err != nil {
					t.Fatalf("trial %d %v: %v", trial, algo, err)
				}
				sameRanking(t, algo.String(), got, want)
			}
		}
	}
}

// TestRandomizedEquivalenceProperty is the property-style sweep: across
// random seeds, dataset shapes, engine options (grid granularity/levels,
// landmark count and strategy, forward-search throttle, cache size) and
// query parameters (k, α), every Algorithm variant must return the same
// f-score ranking as BruteForce. CH variants join whenever the trial builds
// a hierarchy. This is the contract the serving layer leans on: algorithm
// choice is a performance knob, never a correctness one.
func TestRandomizedEquivalenceProperty(t *testing.T) {
	trials := 10
	if testing.Short() {
		trials = 3
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			n := 25 + rng.Intn(100)
			buildCH := trial%3 == 0
			ds := mkDataset(t, rng, n, 0.25*rng.Float64(), trial%4 == 3)
			e := mkEngine(t, ds, Options{
				GridS:            2 + rng.Intn(6),
				GridLevels:       1 + rng.Intn(3),
				NumLandmarks:     2 + rng.Intn(10),
				LandmarkStrategy: landmark.Strategy(rng.Intn(3)),
				FwdEvery:         1 + rng.Intn(4),
				CacheT:           2 + rng.Intn(50),
				BuildCH:          buildCH,
				Seed:             int64(trial),
			})
			algos := allNonCHAlgorithms
			if buildCH {
				algos = append(append([]Algorithm{}, algos...), SFACH, SPACH, TSACH)
			}
			users := locatedUsers(ds)
			for probe := 0; probe < 5; probe++ {
				q := users[rng.Intn(len(users))]
				prm := Params{K: 1 + rng.Intn(15), Alpha: 0.02 + 0.96*rng.Float64()}
				want, err := e.Query(BruteForce, q, prm)
				if err != nil {
					t.Fatal(err)
				}
				for _, algo := range algos {
					got, err := e.Query(algo, q, prm)
					if err != nil {
						t.Fatalf("%v (q=%d k=%d α=%.3f): %v", algo, q, prm.K, prm.Alpha, err)
					}
					sameRanking(t, fmt.Sprintf("%v (q=%d k=%d α=%.3f)", algo, q, prm.K, prm.Alpha), got, want)
				}
			}
		})
	}
}

func TestCHVariantsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	chQueries := map[Algorithm]int{}
	for trial := 0; trial < 4; trial++ {
		n := 30 + rng.Intn(60)
		ds := mkDataset(t, rng, n, 0.1, false)
		e := mkEngine(t, ds, Options{BuildCH: true, Seed: int64(trial)})
		users := locatedUsers(ds)
		for probe := 0; probe < 5; probe++ {
			q := users[rng.Intn(len(users))]
			prm := Params{K: 1 + rng.Intn(8), Alpha: 0.1 + 0.8*rng.Float64()}
			want, err := e.Query(BruteForce, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			for _, algo := range []Algorithm{SFACH, SPACH, TSACH} {
				got, err := e.Query(algo, q, prm)
				if err != nil {
					t.Fatalf("%v: %v", algo, err)
				}
				sameRanking(t, algo.String(), got, want)
				chQueries[algo] += got.Stats.CHQueries
			}
		}
	}
	// TSA-CH issues CH queries only when phase 2 has surviving candidates,
	// so assert on the aggregate across the whole workload.
	for _, algo := range []Algorithm{SFACH, SPACH, TSACH} {
		if chQueries[algo] == 0 {
			t.Fatalf("%v: no CH queries across the entire workload", algo)
		}
	}
}

func TestResultIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := mkDataset(t, rng, 80, 0.1, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[3]
	prm := Params{K: 10, Alpha: 0.3}
	for _, algo := range allNonCHAlgorithms {
		a, err := e.Query(algo, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		b, err := e.Query(algo, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Entries) != len(b.Entries) {
			t.Fatalf("%v: nondeterministic sizes", algo)
		}
		for i := range a.Entries {
			if a.Entries[i] != b.Entries[i] {
				t.Fatalf("%v: nondeterministic entry %d", algo, i)
			}
		}
	}
}

func TestKLargerThanPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	ds := mkDataset(t, rng, 25, 0.3, true)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[0]
	prm := Params{K: 500, Alpha: 0.4}
	want, _ := e.Query(BruteForce, q, prm)
	for _, algo := range allNonCHAlgorithms {
		got, err := e.Query(algo, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		sameRanking(t, algo.String(), got, want)
		if len(got.Entries) >= 25 {
			t.Fatalf("%v returned %d entries for 25-user dataset", algo, len(got.Entries))
		}
	}
}

func TestExtremeAlphas(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ds := mkDataset(t, rng, 70, 0.1, false)
	e := mkEngine(t, ds, Options{})
	users := locatedUsers(ds)
	for _, alpha := range []float64{0.001, 0.999} {
		q := users[1]
		prm := Params{K: 5, Alpha: alpha}
		want, err := e.Query(BruteForce, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range allNonCHAlgorithms {
			got, err := e.Query(algo, q, prm)
			if err != nil {
				t.Fatalf("alpha=%v %v: %v", alpha, algo, err)
			}
			sameRanking(t, algo.String(), got, want)
		}
	}
}

func TestAISCacheCompleteAndFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ds := mkDataset(t, rng, 60, 0, false)
	// Tiny t forces the fallback path.
	small := mkEngine(t, ds, Options{CacheT: 2})
	q := locatedUsers(ds)[0]
	prm := Params{K: 15, Alpha: 0.5}
	res, err := small.Query(AISCache, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.FellBack {
		t.Fatal("tiny cache did not fall back")
	}
	// Huge t covers the whole component: no fallback.
	big := mkEngine(t, ds, Options{CacheT: 100000})
	res2, err := big.Query(AISCache, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.FellBack {
		t.Fatal("complete cache fell back")
	}
	want, _ := big.Query(BruteForce, q, prm)
	sameRanking(t, "AISCache-small", res, want)
	sameRanking(t, "AISCache-big", res2, want)
}

func TestStatsInstrumentation(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	ds := mkDataset(t, rng, 150, 0.05, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[5]
	prm := Params{K: 10, Alpha: 0.3}

	sfa, _ := e.Query(SFA, q, prm)
	if sfa.Stats.SocialPops == 0 || sfa.Stats.SpatialPops != 0 {
		t.Fatalf("SFA stats: %+v", sfa.Stats)
	}
	spa, _ := e.Query(SPA, q, prm)
	if spa.Stats.SpatialPops == 0 {
		t.Fatalf("SPA stats: %+v", spa.Stats)
	}
	tsa, _ := e.Query(TSA, q, prm)
	if tsa.Stats.SocialPops == 0 || tsa.Stats.SpatialPops == 0 {
		t.Fatalf("TSA stats: %+v", tsa.Stats)
	}
	ais, _ := e.Query(AIS, q, prm)
	if ais.Stats.IndexUserPops == 0 || ais.Stats.IndexCellPops == 0 || ais.Stats.GraphDistCalls == 0 {
		t.Fatalf("AIS stats: %+v", ais.Stats)
	}
	if ais.Stats.PopRatio(ds.NumUsers()) <= 0 {
		t.Fatal("AIS pop ratio not positive")
	}
	brute, _ := e.Query(BruteForce, q, prm)
	if brute.Stats.Pops() < ds.NumUsers() {
		t.Fatalf("brute pops %d < n", brute.Stats.Pops())
	}
}

func TestAISDelayedEvaluationReducesDistCalls(t *testing.T) {
	// Across many queries, AIS (with delayed evaluation) must not need more
	// exact distance evaluations than AIS⁻ in aggregate.
	rng := rand.New(rand.NewSource(31))
	ds := mkDataset(t, rng, 300, 0.05, false)
	e := mkEngine(t, ds, Options{GridS: 5})
	users := locatedUsers(ds)
	prm := Params{K: 10, Alpha: 0.3}
	var callsMinus, callsFull, reinserts int
	for i := 0; i < 25; i++ {
		q := users[rng.Intn(len(users))]
		m, _ := e.Query(AISMinus, q, prm)
		f, _ := e.Query(AIS, q, prm)
		callsMinus += m.Stats.GraphDistCalls
		callsFull += f.Stats.GraphDistCalls
		reinserts += f.Stats.Reinserts
	}
	if callsFull > callsMinus {
		t.Fatalf("delayed evaluation increased exact evaluations: %d > %d", callsFull, callsMinus)
	}
	if reinserts == 0 {
		t.Log("note: no reinsert was triggered on this workload")
	}
}

func TestMoveUserChangesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	ds := mkDataset(t, rng, 100, 0, false)
	e := mkEngine(t, ds, Options{})
	users := locatedUsers(ds)
	q := users[0]
	prm := Params{K: 5, Alpha: 0.2} // heavily spatial
	// Teleport a non-result user onto the query point: with α this spatial
	// it must enter the result.
	var outsider graph.VertexID = -1
	before, _ := e.Query(AIS, q, prm)
	inResult := before.IDSet()
	for _, u := range users {
		if u != q && !inResult[int32(u)] {
			outsider = u
			break
		}
	}
	if outsider < 0 {
		t.Skip("no outsider available")
	}
	if err := e.MoveUser(outsider, e.ds.Pts[q]); err != nil {
		t.Fatal(err)
	}
	after, err := e.Query(AIS, q, prm)
	if err != nil {
		t.Fatal(err)
	}
	if !after.IDSet()[int32(outsider)] {
		t.Fatalf("moved user %d not in result %v", outsider, after.IDs())
	}
	// All algorithms must agree post-move.
	want, _ := e.Query(BruteForce, q, prm)
	for _, algo := range allNonCHAlgorithms {
		got, err := e.Query(algo, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		sameRanking(t, algo.String(), got, want)
	}
}

func TestRemoveLocationExcludesUser(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ds := mkDataset(t, rng, 60, 0, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[0]
	prm := Params{K: 3, Alpha: 0.5}
	before, _ := e.Query(AIS, q, prm)
	if len(before.Entries) == 0 {
		t.Skip("empty result")
	}
	victim := before.Entries[0].ID
	if err := e.RemoveUserLocation(victim); err != nil {
		t.Fatal(err)
	}
	after, _ := e.Query(AIS, q, prm)
	if after.IDSet()[victim] {
		t.Fatalf("unlocated user %d still reported", victim)
	}
	want, _ := e.Query(BruteForce, q, prm)
	sameRanking(t, "AIS-after-remove", after, want)
}

func TestResultAccessors(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ds := mkDataset(t, rng, 50, 0, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[0]
	res, err := e.Query(AIS, q, Params{K: 5, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	ids := res.IDs()
	set := res.IDSet()
	if len(ids) != len(res.Entries) || len(set) != len(res.Entries) {
		t.Fatal("accessor sizes wrong")
	}
	for _, id := range ids {
		if !set[id] {
			t.Fatal("IDSet missing reported id")
		}
		if id == int32(q) {
			t.Fatal("query user reported in its own result")
		}
	}
	for i := 1; i < len(res.Entries); i++ {
		if entryLess(res.Entries[i], res.Entries[i-1]) {
			t.Fatal("entries not sorted")
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	if SFA.String() != "SFA" || AIS.String() != "AIS" || TSAQC.String() != "TSA-QC" {
		t.Fatal("algorithm names wrong")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm has empty name")
	}
}

func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	ds := mkDataset(t, rng, 200, 0.05, false)
	e := mkEngine(t, ds, Options{})
	users := locatedUsers(ds)
	prm := Params{K: 8, Alpha: 0.3}
	want := make([]*Result, 16)
	for i := range want {
		w, err := e.Query(AIS, users[i%len(users)], prm)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = w
	}
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			got, err := e.Query(AIS, users[i%len(users)], prm)
			if err != nil {
				done <- err
				return
			}
			for j := range got.Entries {
				if got.Entries[j] != want[i].Entries[j] {
					done <- errMismatch
					return
				}
			}
			done <- nil
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = &mismatchError{}

type mismatchError struct{}

func (*mismatchError) Error() string { return "concurrent query result mismatch" }
