package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// runBrute is the exhaustive reference: one full Dijkstra from the query
// vertex, then a linear scan scoring every user against the snapshot's
// locations. Used for cross-validation and as an honest lower bound on what
// indexing must beat. The shared bound is deliberately not taken (note the
// fresh, unbounded topK): brute force always reports its full local top-k, so
// it stays a bound-free oracle.
func (e *Engine) runBrute(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, prm Params, st *Stats) []Entry {
	g := sn.Grid()
	sp := sn.SocialGraph().Dijkstra(q)
	st.SocialPops += e.ds.NumUsers()
	labels := e.ds.Labels
	r := newTopK(prm.K)
	for v := 0; v < e.ds.NumUsers(); v++ {
		id := graph.VertexID(v)
		if id == q {
			continue
		}
		if prm.Filter != 0 {
			var lbl uint64
			if labels != nil {
				lbl = labels[id]
			}
			if !prm.matches(lbl) {
				st.LabelSkips++
				continue
			}
		}
		p := sp.Dist[v]
		d := spatialDist(g, qpt, id)
		r.Consider(Entry{ID: id, F: combine(prm.Alpha, p, d), P: p, D: d})
	}
	return r.Sorted()
}
