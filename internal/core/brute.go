package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
)

// runBrute is the exhaustive reference: one full Dijkstra from the query
// vertex, then a linear scan scoring every user against the snapshot's
// locations. Used for cross-validation and as an honest lower bound on what
// indexing must beat.
func (e *Engine) runBrute(sn *aggindex.Snapshot, q graph.VertexID, prm Params, st *Stats) []Entry {
	g := sn.Grid()
	sp := sn.SocialGraph().Dijkstra(q)
	st.SocialPops += e.ds.NumUsers()
	r := newTopK(prm.K)
	for v := 0; v < e.ds.NumUsers(); v++ {
		id := graph.VertexID(v)
		if id == q {
			continue
		}
		p := sp.Dist[v]
		d := g.EuclideanDist(q, id)
		r.Consider(Entry{ID: id, F: combine(prm.Alpha, p, d), P: p, D: d})
	}
	return r.Sorted()
}
