package core

import (
	"math"
	"sync"
	"testing"
)

// TestSharedBoundTighten: the bound only ever decreases, regardless of the
// order Tighten calls arrive in, and non-finite inputs never loosen it.
func TestSharedBoundTighten(t *testing.T) {
	sb := NewSharedBound(math.Inf(1))
	if got := sb.Load(); !math.IsInf(got, 1) {
		t.Fatalf("fresh bound = %v, want +Inf", got)
	}
	sb.Tighten(3.5)
	if got := sb.Load(); got != 3.5 {
		t.Fatalf("after Tighten(3.5): %v", got)
	}
	sb.Tighten(7.0) // looser: must not move
	if got := sb.Load(); got != 3.5 {
		t.Fatalf("loosening Tighten moved the bound to %v", got)
	}
	sb.Tighten(math.Inf(1))
	sb.Tighten(math.NaN())
	if got := sb.Load(); got != 3.5 {
		t.Fatalf("non-finite Tighten moved the bound to %v", got)
	}
	sb.Tighten(1.25)
	if got := sb.Load(); got != 1.25 {
		t.Fatalf("after Tighten(1.25): %v", got)
	}
	if nan := NewSharedBound(math.NaN()); !math.IsInf(nan.Load(), 1) {
		t.Fatalf("NaN seed = %v, want +Inf", nan.Load())
	}
}

// TestSharedBoundConcurrentMin: under concurrent CAS contention the bound
// converges to the global minimum of everything published.
func TestSharedBoundConcurrentMin(t *testing.T) {
	sb := NewSharedBound(math.Inf(1))
	const writers, perWriter = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// Deterministic values with global minimum exactly 1.0.
				sb.Tighten(1.0 + float64((w*perWriter+i)%97))
			}
		}(w)
	}
	wg.Wait()
	if got := sb.Load(); got != 1.0 {
		t.Fatalf("concurrent min = %v, want 1.0", got)
	}
}

// TestStatsAddMergesFellBack: FellBack is a property of the whole execution;
// Add must OR it in from either side, not overwrite or drop it.
func TestStatsAddMergesFellBack(t *testing.T) {
	var s Stats
	s.Add(Stats{FellBack: true, CacheHits: 2})
	if !s.FellBack {
		t.Fatal("Add dropped the added execution's FellBack")
	}
	s.Add(Stats{CacheHits: 3})
	if !s.FellBack {
		t.Fatal("Add cleared an already-set FellBack")
	}
	if s.CacheHits != 5 {
		t.Fatalf("CacheHits = %d, want 5", s.CacheHits)
	}
}

// TestTopKSharedBoundStrictness pins the semantics the shard merge depends
// on: Fk reports the next float above the shared bound (ties must stay
// admissible for ID tiebreaks), a full topK publishes its kth value, and a
// partially-filled one publishes nothing.
func TestTopKSharedBoundStrictness(t *testing.T) {
	sb := NewSharedBound(math.Inf(1))
	r := newTopK(2)
	r.reset(2, sb)

	// Under-filled: Fk is the (strictified) external bound only, and nothing
	// is published.
	r.Consider(Entry{ID: 1, F: 0.3})
	if !math.IsInf(sb.Load(), 1) {
		t.Fatalf("under-filled topK published %v", sb.Load())
	}
	if got := r.Fk(); !math.IsInf(got, 1) {
		t.Fatalf("under-filled Fk = %v, want +Inf", got)
	}

	// Filling publishes the kth value.
	r.Consider(Entry{ID: 2, F: 0.7})
	if got := sb.Load(); got != 0.7 {
		t.Fatalf("published bound = %v, want 0.7", got)
	}
	// The local kth itself still bounds Fk (the strict ceiling applies to
	// the *external* bound, not this engine's own fully-evaluated entries).
	if got := r.Fk(); got != 0.7 {
		t.Fatalf("Fk = %v, want local kth 0.7", got)
	}

	// An external engine tightening past this topK's kth caps Fk — strictly
	// above the bound, because an entry tying it can still win its ID
	// tiebreak somewhere in the fan-out.
	sb.Tighten(0.4)
	if got, want := r.Fk(), math.Nextafter(0.4, math.Inf(1)); got != want {
		t.Fatalf("Fk after external tighten = %v, want %v", got, want)
	}

	// Local improvement below the external bound publishes again.
	r.Consider(Entry{ID: 3, F: 0.1})
	if got := sb.Load(); got != 0.3 {
		t.Fatalf("bound after local improvement = %v, want 0.3", got)
	}
	if got := r.Fk(); got != 0.3 {
		t.Fatalf("Fk with local kth below bound = %v, want 0.3", got)
	}

	// Non-finite entries are never admitted and never published.
	if r.Consider(Entry{ID: 4, F: math.Inf(1)}) {
		t.Fatal("admitted a +Inf entry")
	}
}
