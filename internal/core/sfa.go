package core

import (
	"ssrq/internal/aggindex"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// runSFA is the Social First Algorithm (§4.1): expand Dijkstra around v_q,
// evaluate every settled user (Euclidean distance is trivial to attach), and
// stop once θ = α·p(last settled) can no longer beat f_k. Spatial reads go
// through the query's snapshot sn, with qpt standing in for the query
// location (q itself need not be located in sn — see Engine.QueryOn).
//
// With useCH (the SFA-CH variant of Fig. 8), every social distance is
// re-derived through a Contraction Hierarchies point-to-point query instead
// of being read off the incremental expansion — the expansion is kept only
// for its ascending-distance ordering and termination bound. The variant
// demonstrates the paper's point: on social networks, per-target CH queries
// lose to one shared incremental Dijkstra.
func (e *Engine) runSFA(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound *SharedBound, prm Params, st *Stats, p *queryPools, useCH bool) []Entry {
	g := sn.Grid()
	hier := sn.Hierarchy() // chReady guaranteed it fresh when useCH
	labels := e.ds.Labels
	it := &p.soc
	it.Reset(sn.SocialGraph(), q)
	r := p.top.reset(prm.K, bound)
	for {
		v, p, ok := it.Next()
		if !ok {
			break // component exhausted: all unseen users have p = +Inf
		}
		st.SocialPops++
		if v == q {
			continue
		}
		if prm.Filter != 0 {
			var lbl uint64
			if labels != nil {
				lbl = labels[v]
			}
			if !prm.matches(lbl) {
				// Non-matching users still drive the expansion (they are
				// waypoints to matching ones) but never enter the result.
				st.LabelSkips++
				continue
			}
		}
		if useCH {
			p, _ = hier.Dist(q, v)
			st.CHQueries++
		}
		d := spatialDist(g, qpt, v)
		r.Consider(Entry{ID: v, F: combine(prm.Alpha, p, d), P: p, D: d})
		if theta := prm.Alpha * it.LastKey(); theta >= r.Fk() {
			break
		}
	}
	return r.Sorted()
}
