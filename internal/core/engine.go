package core

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"ssrq/internal/aggindex"
	"ssrq/internal/ch"
	"ssrq/internal/dataset"
	"ssrq/internal/fof"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/pqueue"
	"ssrq/internal/spatial"
)

// Algorithm selects the SSRQ processing method.
type Algorithm int

const (
	// SFA is the Social First Approach (§4.1).
	SFA Algorithm = iota
	// SPA is the Spatial First Approach (§4.1).
	SPA
	// TSA is the landmark-aided Twofold Search Approach with round-robin
	// probing (§4.2) — the "TSA" of the experiments.
	TSA
	// TSAQC is TSA with Quick-Combine probing in its first phase.
	TSAQC
	// TSANoLandmark is TSA without the landmark candidate pruning, kept for
	// ablation (the paper "disregards it because it consistently performs
	// worse").
	TSANoLandmark
	// AISBID is Algorithm 2 evaluating every candidate with a fresh
	// bidirectional ALT search ([25]) — no computation sharing (Fig. 10).
	AISBID
	// AISMinus is AIS with distance and forward-heap caching but without
	// the delayed evaluation strategy (Fig. 10's AIS⁻).
	AISMinus
	// AIS is the full aggregate index search with every optimization (§5).
	AIS
	// AISCache is the §5.4 pre-computation method: a t-nearest social list
	// drives an SFA-style scan and falls back to AIS on exhaustion.
	AISCache
	// SFACH, SPACH and TSACH are the Fig. 8 comparison variants whose
	// social-distance evaluations go through Contraction Hierarchies
	// instead of the shared incremental Dijkstra.
	SFACH
	SPACH
	TSACH
	// BruteForce computes one full Dijkstra and scans all users; the
	// correctness reference.
	BruteForce
)

var algoNames = map[Algorithm]string{
	SFA: "SFA", SPA: "SPA", TSA: "TSA", TSAQC: "TSA-QC", TSANoLandmark: "TSA-NL",
	AISBID: "AIS-BID", AISMinus: "AIS-", AIS: "AIS", AISCache: "AIS-Cache",
	SFACH: "SFA-CH", SPACH: "SPA-CH", TSACH: "TSA-CH", BruteForce: "Brute",
}

func (a Algorithm) String() string {
	if n, ok := algoNames[a]; ok {
		return n
	}
	return fmt.Sprintf("Algorithm(%d)", int(a))
}

// Options configure engine construction (system parameters of Table 3).
type Options struct {
	// GridS is the partitioning granularity s (default 10).
	GridS int
	// GridLevels is the number of stored grid levels (default 2: the paper
	// keeps the lowest two levels of a three-level hierarchy).
	GridLevels int
	// NumLandmarks is M (default 8, the paper's fine-tuned value).
	NumLandmarks int
	// LandmarkStrategy defaults to the farthest selection of [25].
	LandmarkStrategy landmark.Strategy
	// Seed drives randomized preprocessing choices.
	Seed int64
	// BuildCH additionally builds a contraction hierarchy so the *-CH
	// variants can run. Expensive on large social graphs (which is the
	// point of Fig. 8).
	BuildCH bool
	// CHWitnessLimit bounds CH witness searches (default 120).
	CHWitnessLimit int
	// CacheT is the t of §5.4: how many socially-nearest users the
	// pre-computation list holds per query user (default 1000).
	CacheT int
	// FwdEvery throttles GraphDist's shared forward search: one forward
	// pop per FwdEvery reverse pops (default 1 = Algorithm 3's strict
	// alternation). See the graphdist ablation benchmark.
	FwdEvery int
	// UpdateQueueCap bounds the asynchronous update queue fed by
	// MoveUserAsync; a full queue applies backpressure (default 4096).
	UpdateQueueCap int
	// UpdateMaxBatch caps how many queued updates the updater coalesces
	// into one published epoch (default 256).
	UpdateMaxBatch int
	// LandmarkRepairBudget caps the per-landmark per-edge-op incremental
	// table repair work before the landmark is disabled and rebuilt
	// asynchronously (default 256).
	LandmarkRepairBudget int
	// OverlayCompactThreshold is the edge-overlay delta size that triggers
	// folding the delta back into a pure CSR (default max(1024, n/8)).
	OverlayCompactThreshold int
	// CHRepairBudget caps how many vertices one in-place contraction-
	// hierarchy repair may re-contract (witness-search work, the dominant
	// super-linear build cost) after a decrease-only edge batch before
	// deferring to the background full rebuild (default 512). Each repair
	// additionally pays a linear O(n+m+shortcuts) replay pass under the
	// writer lock — roughly one landmark Dijkstra; set a negative budget to
	// disable in-place repair and route every churn epoch to the background
	// rebuild instead. Only meaningful with BuildCH.
	CHRepairBudget int
	// ForcedInstallInterval rate-limits the install-under-writer-lock
	// fallback that bounds landmark/CH rebuild starvation under sustained
	// churn: at most one forced install event per structure per interval
	// (default 2s; negative disables forced installs).
	ForcedInstallInterval time.Duration
	// RebalanceThreshold is the occupancy imbalance (max shard population
	// over mean) past which the sharded engine re-cuts its Z-order partition
	// online (default 1.6; negative disables automatic rebalancing). Ignored
	// by monolithic engines.
	RebalanceThreshold float64
	// RebalanceDrainBatch is how many leaf cells one rebalance pass migrates
	// per stripe-lock acquisition (default 8); smaller batches shorten each
	// writer stall, larger ones finish the re-cut sooner. Ignored by
	// monolithic engines.
	RebalanceDrainBatch int
}

// WithDefaults returns a copy with every zero field replaced by its default.
// Compositions that must agree with an engine's derived geometry (the
// sharded engine's partition layout, for one) resolve the options the same
// way NewEngine will before deriving anything from them.
func (o Options) WithDefaults() Options {
	o.setDefaults()
	return o
}

func (o *Options) setDefaults() {
	if o.GridS == 0 {
		o.GridS = 10
	}
	if o.GridLevels == 0 {
		o.GridLevels = 2
	}
	if o.NumLandmarks == 0 {
		o.NumLandmarks = 8
	}
	if o.CHWitnessLimit == 0 {
		o.CHWitnessLimit = 120
	}
	if o.CacheT == 0 {
		o.CacheT = 1000
	}
	if o.FwdEvery == 0 {
		o.FwdEvery = 1
	}
	if o.UpdateQueueCap == 0 {
		o.UpdateQueueCap = 4096
	}
	if o.UpdateMaxBatch == 0 {
		o.UpdateMaxBatch = 256
	}
	if o.RebalanceThreshold == 0 {
		o.RebalanceThreshold = 1.6
	}
	if o.RebalanceDrainBatch == 0 {
		o.RebalanceDrainBatch = 8
	}
}

// Update is one world update routed through the engine: a location op — a
// move (Remove false) or a location removal (Remove true), coordinates
// normalized — or a social edge op (Kind OpEdgeUpsert/OpEdgeRemove with
// U/V/W set, weight normalized).
type Update = aggindex.Op

// Update kinds, re-exported for callers assembling mixed batches.
const (
	OpLocation   = aggindex.OpLocation
	OpEdgeUpsert = aggindex.OpEdgeUpsert
	OpEdgeRemove = aggindex.OpEdgeRemove
)

// Engine binds a dataset to its indexes and answers SSRQ queries. The
// engine is safe for concurrent use and queries are lock-free: Query loads
// the current index epoch (grid membership, coordinates and AIS summaries
// published atomically as one immutable snapshot) with a single atomic
// pointer read and runs entirely against it, so location updates never block
// queries and every query observes one consistent version of the world.
// Updates go through the synchronous MoveUser/ApplyUpdates (one published
// epoch per call) or the asynchronous MoveUserAsync pipeline, which
// coalesces queued moves into batched epochs (see Updater).
type Engine struct {
	ds    *dataset.Dataset
	lm    *landmark.Set
	grid  *spatial.Grid
	agg   *aggindex.Index
	cache *socialCache
	opts  Options
	// fof is the friends-of-friends bound index owned by the social
	// substrate (nil only for engines without one); queries arm a pooled
	// Scratch from it for the 2-hop exact / weight-floor lower bound.
	fof *fof.Index

	pools sync.Pool // *queryPools, reused across queries

	upOnce  sync.Once
	updater atomic.Pointer[Updater]
}

// queryPools are the per-query scratch structures, checked out once per
// QueryOn and reused across queries so the serving path allocates (almost)
// nothing: A* pools, the shared forward Dijkstra, the spatial NN stream, the
// interim result, TSA's candidate set, AIS's branch-and-bound heap and the
// GraphDist submodule, plus flat float scratch for landmark vectors and
// batched Lemma-2 bounds. Everything here is arena-like state that a single
// query arms via a Reset and abandons on return; QueryOn copies the final
// entries out before the pools go back, so no pooled memory escapes.
type queryPools struct {
	rev *graph.AStarPool
	fwd *graph.AStarPool

	soc      graph.DijkstraIterator // forward social expansion (SFA/SPA/TSA, GraphDist)
	nn       *spatial.NNIterator    // incremental spatial NN stream (SPA/TSA)
	top      topK                   // interim result R
	cand     candidateSet           // TSA's partially-evaluated set Q
	ais      pqueue.Heap[aisItem]   // AIS branch-and-bound heap
	gd       graphDist              // §5.2 shared-distance submodule
	childBuf []int32                // grid child-index scratch
	qvec     []float64              // query landmark vector
	cellLow  []float64              // batched Lemma-2 bounds, one per top-level cell
	fof      fof.Scratch            // friends-of-friends exact-2-hop bound scratch
}

// NewEngine builds all indexes over the dataset.
func NewEngine(ds *dataset.Dataset, opts Options) (*Engine, error) {
	opts.setDefaults()
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	n := ds.NumUsers()
	m := opts.NumLandmarks
	if m > n {
		m = n
	}
	lm, err := landmark.Select(ds.G, m, opts.LandmarkStrategy, opts.Seed)
	if err != nil {
		return nil, fmt.Errorf("core: selecting landmarks: %w", err)
	}
	layout, err := spatial.NewLayout(ds.PaddedBounds(), opts.GridS, opts.GridLevels)
	if err != nil {
		return nil, fmt.Errorf("core: grid layout: %w", err)
	}
	grid, err := spatial.NewGrid(layout, ds.Pts, ds.Located)
	if err != nil {
		return nil, fmt.Errorf("core: grid: %w", err)
	}
	cfg := aggindex.Config{
		RepairBudget:          opts.LandmarkRepairBudget,
		CompactThreshold:      opts.OverlayCompactThreshold,
		ForcedInstallInterval: opts.ForcedInstallInterval,
		Labels:                ds.Labels,
	}
	if opts.BuildCH {
		// The hierarchy is built against the construction graph (social epoch
		// 0) and handed to the aggregate index, which owns its survival under
		// churn: in-place repair for decrease-only batches, background
		// rebuilds otherwise, published per-epoch through the Snapshot.
		chd, err := ch.NewDynamic(ds.G, ch.Options{WitnessSettleLimit: opts.CHWitnessLimit}, opts.CHRepairBudget)
		if err != nil {
			return nil, fmt.Errorf("core: contraction hierarchy: %w", err)
		}
		cfg.CH = chd
	}
	agg, err := aggindex.NewSocial(grid, lm, ds.G, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate index: %w", err)
	}
	e := &Engine{
		ds:    ds,
		lm:    lm,
		grid:  grid,
		agg:   agg,
		cache: newSocialCache(opts.CacheT),
		opts:  opts,
	}
	if sub := agg.Substrate(); sub != nil {
		e.fof = sub.FoF()
	}
	e.pools.New = func() any {
		return &queryPools{
			rev: graph.NewAStarPool(n),
			fwd: graph.NewAStarPool(n),
			nn:  spatial.NewNNIterator(),
		}
	}
	return e, nil
}

// NewEngineWithSubstrate builds an engine whose social dimension — graph
// overlay, landmark tables, contraction hierarchy and their maintenance
// loops — comes from an existing shared substrate instead of being built
// and owned privately. The engine owns only its spatial side (grid + AIS
// summaries over ds, typically a spatial restriction of the substrate's
// population). The sharded engine attaches S of these to one substrate, so
// the social structures are stored once instead of S times and every edge
// op applies once. Closing the engine never closes the substrate; the
// substrate's owner outlives and tears it down.
func NewEngineWithSubstrate(ds *dataset.Dataset, opts Options, sub *aggindex.Social) (*Engine, error) {
	opts.setDefaults()
	if ds == nil {
		return nil, fmt.Errorf("core: nil dataset")
	}
	if sub == nil {
		return nil, fmt.Errorf("core: nil social substrate")
	}
	layout, err := spatial.NewLayout(ds.PaddedBounds(), opts.GridS, opts.GridLevels)
	if err != nil {
		return nil, fmt.Errorf("core: grid layout: %w", err)
	}
	grid, err := spatial.NewGrid(layout, ds.Pts, ds.Located)
	if err != nil {
		return nil, fmt.Errorf("core: grid: %w", err)
	}
	agg, err := aggindex.NewShared(grid, sub)
	if err != nil {
		return nil, fmt.Errorf("core: aggregate index: %w", err)
	}
	e := &Engine{
		ds:    ds,
		lm:    sub.Landmarks(),
		grid:  grid,
		agg:   agg,
		cache: newSocialCache(opts.CacheT),
		opts:  opts,
		fof:   sub.FoF(),
	}
	n := ds.NumUsers()
	e.pools.New = func() any {
		return &queryPools{
			rev: graph.NewAStarPool(n),
			fwd: graph.NewAStarPool(n),
			nn:  spatial.NewNNIterator(),
		}
	}
	return e, nil
}

// Dataset returns the engine's dataset. Note that the dataset's graph and
// locations are construction-time state: live social structure comes from
// Snapshot().SocialGraph(), live locations from Snapshot().Grid().
func (e *Engine) Dataset() *dataset.Dataset { return e.ds }

// Landmarks returns the landmark set of the latest published epoch (tables
// track edge churn; disabled landmarks are excluded from bounds).
func (e *Engine) Landmarks() *landmark.Set { return e.agg.Snapshot().Landmarks() }

// Grid returns the spatial grid index (writer-side handle; concurrent
// readers should use Snapshot).
func (e *Engine) Grid() *spatial.Grid { return e.grid }

// AggIndex returns the AIS aggregate index.
func (e *Engine) AggIndex() *aggindex.Index { return e.agg }

// OnEpoch installs the epoch-delta callback (single consumer; nil
// detaches). The callback runs on the publishing goroutine under the
// index writer lock — it must be cheap and must not call back into the
// engine. See aggindex.SetNotify.
func (e *Engine) OnEpoch(fn func(aggindex.EpochDelta)) { e.agg.SetNotify(fn) }

// Snapshot returns the current index epoch: grid membership, coordinates
// and AIS summaries as one immutable, lock-free view.
func (e *Engine) Snapshot() *aggindex.Snapshot { return e.agg.Snapshot() }

// Options returns the options the engine was built with (defaults filled).
func (e *Engine) Options() Options { return e.opts }

// ValidateUpdate rejects malformed updates before they can reach the index:
// out-of-range users, non-finite coordinates (a NaN point would silently
// corrupt grid membership via CellIndex clamping), and malformed edge ops
// (self-loops, non-positive or non-finite weights, or edge churn on an
// engine whose landmark count exceeds dynamic-maintenance support).
// Exported so compositions that route updates across engines (the sharded
// engine) can reject a whole batch before any routing decision is made.
func (e *Engine) ValidateUpdate(u Update) error {
	n := e.ds.NumUsers()
	switch u.Kind {
	case aggindex.OpLocation:
		if u.ID < 0 || int(u.ID) >= n {
			return fmt.Errorf("core: user %d out of range [0,%d)", u.ID, n)
		}
		if !u.Remove && !u.To.IsFinite() {
			return fmt.Errorf("core: non-finite coordinates (%v, %v) for user %d", u.To.X, u.To.Y, u.ID)
		}
		return nil
	case aggindex.OpEdgeUpsert, aggindex.OpEdgeRemove:
		if !e.agg.SupportsEdgeChurn() {
			return fmt.Errorf("core: edge churn unsupported with %d landmarks (max 64)", e.opts.NumLandmarks)
		}
		if u.U < 0 || int(u.U) >= n || u.V < 0 || int(u.V) >= n {
			return fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", u.U, u.V, n)
		}
		if u.U == u.V {
			return fmt.Errorf("core: self-loop on user %d", u.U)
		}
		if u.Kind == aggindex.OpEdgeUpsert && (!(u.W > 0) || math.IsInf(u.W, 1) || math.IsNaN(u.W)) {
			return fmt.Errorf("core: edge (%d,%d) weight %v must be positive and finite", u.U, u.V, u.W)
		}
		return nil
	default:
		return fmt.Errorf("core: unknown update kind %d", u.Kind)
	}
}

// MoveUser relocates a user (normalized coordinates), maintaining both the
// plain grid and the AIS summaries, and publishes the change as one epoch
// before returning (read-your-writes). Never blocks queries. For sustained
// churn prefer MoveUserAsync or ApplyUpdates, which amortize the per-epoch
// copy-on-write cost across a batch.
func (e *Engine) MoveUser(id int32, to spatial.Point) error {
	u := Update{ID: id, To: to}
	if err := e.ValidateUpdate(u); err != nil {
		return err
	}
	e.agg.Apply([]Update{u})
	return nil
}

// RemoveUserLocation drops a user's location and publishes the change as
// one epoch. Never blocks queries.
func (e *Engine) RemoveUserLocation(id int32) error {
	u := Update{ID: id, Remove: true}
	if err := e.ValidateUpdate(u); err != nil {
		return err
	}
	e.agg.Apply([]Update{u})
	return nil
}

// ApplyUpdates validates and applies a batch of updates as a single
// published epoch (the cheapest way to ingest bulk location data). On a
// validation error nothing is applied.
func (e *Engine) ApplyUpdates(ops []Update) error {
	for _, u := range ops {
		if err := e.ValidateUpdate(u); err != nil {
			return err
		}
	}
	e.agg.Apply(ops)
	return nil
}

// Query answers an SSRQ for query user q. Lock-free and safe for unlimited
// concurrency: the query loads the published index epoch once and executes
// entirely against that snapshot, so concurrent location updates neither
// block it nor bleed into its view.
func (e *Engine) Query(algo Algorithm, q graph.VertexID, prm Params) (*Result, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	sn := e.agg.Snapshot()
	g := sn.Grid()
	if q < 0 || int(q) >= g.NumUsers() {
		return nil, fmt.Errorf("core: query user %d out of range [0,%d)", q, g.NumUsers())
	}
	if !g.Located(q) {
		return nil, fmt.Errorf("core: query user %d has no known location", q)
	}
	return e.QueryOn(sn, algo, q, g.Point(q), nil, prm)
}

// QueryOn answers an SSRQ against an explicit snapshot with an explicit
// query location and an optional shared bound — the primitive the sharded
// engine's fan-out is built on. Unlike Query it does not require q to be
// located in sn's grid: qpt stands in for the query location, so a shard
// that does not own the query user can still rank its own users against the
// owner shard's coordinates. Social distances always start from vertex q of
// sn's social graph, which every shard replicates in full, so they are exact
// regardless of ownership.
//
// bound, when non-nil, is a live ceiling on the final kth ranking value
// (SharedBound): the search reads it on every termination check — so a
// concurrent fan-out sibling tightening it mid-flight prunes this search too
// — and publishes its own kth value back as its interim result fills. Unseen
// users provably *strictly worse* than the bound are abandoned early; entries
// tying it are still reported, so a caller merging several QueryOn results
// under one shared threshold loses nothing to the (F, ID) tiebreak. nil means
// unbounded.
func (e *Engine) QueryOn(sn *aggindex.Snapshot, algo Algorithm, q graph.VertexID, qpt spatial.Point, bound *SharedBound, prm Params) (*Result, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if q < 0 || int(q) >= sn.Grid().NumUsers() {
		return nil, fmt.Errorf("core: query user %d out of range [0,%d)", q, sn.Grid().NumUsers())
	}
	res := &Result{Query: q, Params: prm}
	st := &res.Stats
	// Check out the per-query scratch once for the whole execution; every
	// algorithm arms what it needs from it. The pooled entries are copied into
	// the Result before the scratch goes back (the deferred put runs last), so
	// nothing pooled escapes the query.
	p := e.getPools()
	defer e.putPools(p)
	var entries []Entry
	switch algo {
	case SFA:
		entries = e.runSFA(sn, q, qpt, bound, prm, st, p, false)
	case SFACH:
		if err := e.chReady(sn, algo); err != nil {
			return nil, err
		}
		entries = e.runSFA(sn, q, qpt, bound, prm, st, p, true)
	case SPA:
		entries = e.runSPA(sn, q, qpt, bound, prm, st, p, false)
	case SPACH:
		if err := e.chReady(sn, algo); err != nil {
			return nil, err
		}
		entries = e.runSPA(sn, q, qpt, bound, prm, st, p, true)
	case TSA:
		entries = e.runTSA(sn, q, qpt, bound, prm, st, p, tsaConfig{prune: true})
	case TSAQC:
		entries = e.runTSA(sn, q, qpt, bound, prm, st, p, tsaConfig{prune: true, quickCombine: true})
	case TSANoLandmark:
		entries = e.runTSA(sn, q, qpt, bound, prm, st, p, tsaConfig{})
	case TSACH:
		if err := e.chReady(sn, algo); err != nil {
			return nil, err
		}
		entries = e.runTSA(sn, q, qpt, bound, prm, st, p, tsaConfig{prune: true, useCH: true})
	case AISBID:
		entries = e.runAIS(sn, q, qpt, bound, prm, st, p, aisConfig{sharing: false, delayed: false})
	case AISMinus:
		entries = e.runAIS(sn, q, qpt, bound, prm, st, p, aisConfig{sharing: true, delayed: false})
	case AIS:
		entries = e.runAIS(sn, q, qpt, bound, prm, st, p, aisConfig{sharing: true, delayed: true})
	case AISCache:
		entries = e.runAISCache(sn, q, qpt, bound, prm, st, p)
	case BruteForce:
		entries = e.runBrute(sn, q, qpt, prm, st)
	default:
		return nil, fmt.Errorf("core: unknown algorithm %v", algo)
	}
	// make+copy rather than append(nil, ...): an empty result must stay a
	// non-nil slice (it serializes as [] over HTTP, not null).
	res.Entries = make([]Entry, len(entries))
	copy(res.Entries, entries)
	return res, nil
}

// chReady gates the contraction-hierarchy variants: they need a built
// hierarchy, and it must have been built (or repaired) at exactly the
// snapshot's social epoch — a hierarchy from another epoch describes a
// different graph and would be silently inexact. Between a churn batch and
// the repair/rebuild that catches the hierarchy up, the variants are refused
// with both epochs, so callers can tell transient staleness (rebuild racing
// churn, retry after RebuildCH or the background loop settles) from a
// missing hierarchy.
func (e *Engine) chReady(sn *aggindex.Snapshot, algo Algorithm) error {
	if sn.Hierarchy() == nil {
		return fmt.Errorf("core: %v requires Options.BuildCH", algo)
	}
	if !sn.HierarchyFresh() {
		return fmt.Errorf("core: %v unavailable: contraction hierarchy built at social epoch %d, snapshot at social epoch %d (rebuild pending)",
			algo, sn.HierarchyEpoch(), sn.SocialEpoch())
	}
	return nil
}

// SocialStats is a point-in-time view of the social dimension: edge counts,
// overlay shape and landmark-maintenance health.
type SocialStats = aggindex.SocialStats

// SocialStats reports the social dimension's counters.
func (e *Engine) SocialStats() SocialStats { return e.agg.SocialStats() }

// SupportsEdgeChurn reports whether the engine accepts edge updates (false
// when the landmark count exceeds what dynamic maintenance supports).
func (e *Engine) SupportsEdgeChurn() bool { return e.agg.SupportsEdgeChurn() }

// RebuildLandmarks synchronously restores any landmarks disabled by
// over-budget repairs (normally the background rebuild handles this; the
// synchronous form gives tests and operators a determinism knob). Returns
// how many landmarks were rebuilt.
func (e *Engine) RebuildLandmarks() int { return e.agg.RebuildDisabledLandmarks() }

// RebuildCH synchronously re-contracts the current social graph and installs
// the fresh hierarchy, making the *-CH variants serve again immediately (the
// background rebuild normally handles this; the synchronous form gives tests
// and operators a determinism knob). Reports whether a rebuild was needed
// and ran; false also when the engine was built without BuildCH.
func (e *Engine) RebuildCH() bool { return e.agg.RebuildCH() }

// AddFriend inserts (or reweights) the undirected friendship (u,v) with
// normalized weight w and publishes the change as one epoch before
// returning: the graph, the landmark tables and the affected cell summaries
// all move together, so queries never observe a half-applied edge. Never
// blocks queries.
func (e *Engine) AddFriend(u, v int32, w float64) error {
	op := Update{Kind: aggindex.OpEdgeUpsert, U: u, V: v, W: w}
	if err := e.ValidateUpdate(op); err != nil {
		return err
	}
	e.agg.Apply([]Update{op})
	return nil
}

// RemoveFriend deletes the undirected friendship (u,v) (a no-op when
// absent) and publishes the change as one epoch. Never blocks queries.
func (e *Engine) RemoveFriend(u, v int32) error {
	op := Update{Kind: aggindex.OpEdgeRemove, U: u, V: v}
	if err := e.ValidateUpdate(op); err != nil {
		return err
	}
	e.agg.Apply([]Update{op})
	return nil
}

// AddFriendAsync enqueues an edge upsert on the update pipeline (shared
// with location updates: one stream, one Flush barrier). Redundant ops for
// the same unordered pair coalesce to the newest.
func (e *Engine) AddFriendAsync(u, v int32, w float64) error {
	op := Update{Kind: aggindex.OpEdgeUpsert, U: u, V: v, W: w}
	if err := e.ValidateUpdate(op); err != nil {
		return err
	}
	return e.ensureUpdater().enqueue(op)
}

// RemoveFriendAsync enqueues an edge removal on the update pipeline.
func (e *Engine) RemoveFriendAsync(u, v int32) error {
	op := Update{Kind: aggindex.OpEdgeRemove, U: u, V: v}
	if err := e.ValidateUpdate(op); err != nil {
		return err
	}
	return e.ensureUpdater().enqueue(op)
}

// UserLocation returns a user's current (normalized) coordinates as of the
// latest published epoch; ok is false when unknown or out of range.
func (e *Engine) UserLocation(id int32) (spatial.Point, bool) {
	g := e.agg.Snapshot().Grid()
	if id < 0 || int(id) >= g.NumUsers() || !g.Located(id) {
		return spatial.Point{}, false
	}
	return g.Point(id), true
}

// NumLocated returns how many users have an indexed location in the latest
// published epoch.
func (e *Engine) NumLocated() int { return e.agg.Snapshot().Grid().NumLocated() }

// LiveSocialGraph returns the social graph of the latest published epoch.
func (e *Engine) LiveSocialGraph() *graph.Graph { return e.agg.Snapshot().SocialGraph() }

// FoFIndex returns the friends-of-friends bound index (nil for engines
// without a social substrate). Its floors are monotone non-increasing, so
// bounds derived from them stay admissible against any published snapshot.
func (e *Engine) FoFIndex() *fof.Index { return e.fof }

// SpatialKNN returns the k spatially-nearest located users to q, excluding q
// itself (a pure one-domain query). Lock-free against the latest epoch.
func (e *Engine) SpatialKNN(q int32, k int) ([]spatial.Neighbor, error) {
	g := e.agg.Snapshot().Grid()
	if q < 0 || int(q) >= g.NumUsers() || !g.Located(q) {
		return nil, fmt.Errorf("core: user %d has no known location", q)
	}
	return g.KNN(g.Point(q), k, func(id int32) bool { return id == q }), nil
}

func (e *Engine) getPools() *queryPools  { return e.pools.Get().(*queryPools) }
func (e *Engine) putPools(p *queryPools) { e.pools.Put(p) }
