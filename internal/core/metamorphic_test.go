// Metamorphic and differential test harness for the SSRQ engines. It lives
// in package core_test (not core) so it can drive the monolithic
// core.Engine and the spatially-partitioned shard.Engine through one
// interface and hold them to identical behaviour — the correctness story of
// the sharded fan-out is exactly this file.
//
// Three property families run against every algorithm and both engine
// flavors, under interleaved location/edge churn:
//
//   - k-prefix: the top-k result is a prefix of the top-(k+1) result.
//   - α-consistency ("λ-monotonicity"): reported scores decompose as
//     f = α·p + (1−α)·d, the (p, d) pair per user is independent of α, and
//     raising the social weight never lets a candidate that is better only
//     spatially overtake one it already trailed — the pairwise order moves
//     monotonically with α, exactly as the score function dictates.
//   - duplicate-freedom: no user is reported twice and the query user never
//     reports itself (the property a sharded engine would break first, via
//     a mid-relocation user visible in two shards).
//
// The differential churn test replays one randomized interleaved op stream
// into a monolithic engine, a 1-shard engine and an 8-shard engine, and
// requires all three to agree exactly (IDs and scores) after every Flush —
// and to match a brute-force oracle rebuilt from scratch on an independently
// maintained edge model.
package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
	"ssrq/internal/shard"
	"ssrq/internal/spatial"
)

// queryEngine is the shared surface the harness drives; core.Engine and
// shard.Engine both satisfy it.
type queryEngine interface {
	Query(algo core.Algorithm, q graph.VertexID, prm core.Params) (*core.Result, error)
	QueryBatch(queries []core.BatchQuery, workers int) []core.BatchResult
	ApplyUpdates(ops []core.Update) error
	MoveUserAsync(id int32, to spatial.Point) error
	RemoveUserLocationAsync(id int32) error
	AddFriendAsync(u, v int32, w float64) error
	RemoveFriendAsync(u, v int32) error
	Flush()
	Close()
	RebuildLandmarks() int
	UserLocation(id int32) (spatial.Point, bool)
}

var (
	_ queryEngine = (*core.Engine)(nil)
	_ queryEngine = (*shard.Engine)(nil)
)

// metaAlgorithms are the churn-serving algorithms the properties cover.
var metaAlgorithms = []core.Algorithm{
	core.SFA, core.SPA, core.TSA, core.TSAQC, core.TSANoLandmark,
	core.AISBID, core.AISMinus, core.AIS, core.AISCache, core.BruteForce,
}

// clusteredDS synthesizes a geo-clustered dataset (the sharding target
// workload) with a fraction of unlocated users.
func clusteredDS(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges, pts, located, err := gen.GeoSocial(gen.GeoSocialConfig{
		N: n, M: 3, PLocal: 0.6, Cities: 5, LocatedFrac: 0.85,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildGraph(n, edges, gen.DegreeProductWeights(n, edges))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.New("meta", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func locatedIDs(ds *dataset.Dataset) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located[v] {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// checkDuplicateFreedom: no repeated IDs, query user absent, entries sorted
// ascending by (F, ID), at most k entries, all scores finite.
func checkDuplicateFreedom(t *testing.T, label string, res *core.Result) {
	t.Helper()
	if len(res.Entries) > res.Params.K {
		t.Fatalf("%s: %d entries exceed k=%d", label, len(res.Entries), res.Params.K)
	}
	seen := make(map[int32]bool, len(res.Entries))
	for i, e := range res.Entries {
		if e.ID == int32(res.Query) {
			t.Fatalf("%s: query user reported at rank %d", label, i)
		}
		if seen[e.ID] {
			t.Fatalf("%s: user %d reported twice", label, e.ID)
		}
		seen[e.ID] = true
		if math.IsInf(e.F, 0) || math.IsNaN(e.F) {
			t.Fatalf("%s: rank %d non-finite f=%v", label, i, e.F)
		}
		if i > 0 {
			prev := res.Entries[i-1]
			if e.F < prev.F || (e.F == prev.F && e.ID < prev.ID) {
				t.Fatalf("%s: rank %d (id=%d f=%v) out of (F, ID) order after (id=%d f=%v)",
					label, i, e.ID, e.F, prev.ID, prev.F)
			}
		}
	}
}

// checkKPrefix: the top-k result must be the first k entries of the
// top-(k+1) result.
func checkKPrefix(t *testing.T, label string, e queryEngine, algo core.Algorithm, q graph.VertexID, k int, alpha float64) {
	t.Helper()
	resK, err := e.Query(algo, q, core.Params{K: k, Alpha: alpha})
	if err != nil {
		t.Fatalf("%s: k=%d: %v", label, k, err)
	}
	resK1, err := e.Query(algo, q, core.Params{K: k + 1, Alpha: alpha})
	if err != nil {
		t.Fatalf("%s: k=%d: %v", label, k+1, err)
	}
	wantLen := len(resK1.Entries)
	if wantLen > k {
		wantLen = k
	}
	if len(resK.Entries) != wantLen {
		t.Fatalf("%s: top-%d has %d entries but top-%d has %d", label, k, len(resK.Entries), k+1, len(resK1.Entries))
	}
	for i, e := range resK.Entries {
		w := resK1.Entries[i]
		if e.ID != w.ID || math.Abs(e.F-w.F) > 1e-12 {
			t.Fatalf("%s: rank %d of top-%d (id=%d f=%v) != top-%d (id=%d f=%v)",
				label, i, k, e.ID, e.F, k+1, w.ID, w.F)
		}
	}
}

// checkAlphaConsistency: scores decompose per the ranking function, the
// (p, d) decomposition per user is α-invariant, and pairwise order between a
// spatially-better and a socially-better candidate moves monotonically as
// the social weight α rises.
func checkAlphaConsistency(t *testing.T, label string, e queryEngine, algo core.Algorithm, q graph.VertexID, k int) {
	t.Helper()
	alphas := []float64{0.2, 0.5, 0.8}
	results := make([]*core.Result, len(alphas))
	comp := make(map[int32][2]float64) // user -> (P, D) fingerprint
	for i, a := range alphas {
		res, err := e.Query(algo, q, core.Params{K: k, Alpha: a})
		if err != nil {
			t.Fatalf("%s: α=%.1f: %v", label, a, err)
		}
		results[i] = res
		for _, ent := range res.Entries {
			if math.Abs(a*ent.P+(1-a)*ent.D-ent.F) > 1e-9 {
				t.Fatalf("%s: α=%.1f user %d: f=%v != α·p+(1−α)·d (p=%v d=%v)", label, a, ent.ID, ent.F, ent.P, ent.D)
			}
			if prev, ok := comp[ent.ID]; ok {
				if math.Abs(prev[0]-ent.P) > 1e-9 || math.Abs(prev[1]-ent.D) > 1e-9 {
					t.Fatalf("%s: user %d decomposition drifts with α: (%v,%v) vs (%v,%v)",
						label, ent.ID, prev[0], prev[1], ent.P, ent.D)
				}
			} else {
				comp[ent.ID] = [2]float64{ent.P, ent.D}
			}
		}
	}
	// Pairwise monotonicity across adjacent α levels: a candidate that is
	// better only spatially (smaller d, larger p) and already trails at a
	// lower social weight must keep trailing at a higher one.
	for step := 0; step < len(alphas)-1; step++ {
		lo, hi := results[step], results[step+1]
		rankLo := make(map[int32]int, len(lo.Entries))
		for i, ent := range lo.Entries {
			rankLo[ent.ID] = i
		}
		rankHi := make(map[int32]int, len(hi.Entries))
		for i, ent := range hi.Entries {
			rankHi[ent.ID] = i
		}
		for _, a := range lo.Entries {
			for _, b := range lo.Entries {
				// a spatially better, b socially better, a behind b at low α.
				if !(a.D < b.D-1e-12 && a.P > b.P+1e-12 && rankLo[a.ID] > rankLo[b.ID]) {
					continue
				}
				ra, okA := rankHi[a.ID]
				rb, okB := rankHi[b.ID]
				if okA && okB && ra < rb {
					t.Fatalf("%s: raising α %0.1f→%0.1f promoted spatially-better user %d (p=%v d=%v) above %d (p=%v d=%v)",
						label, alphas[step], alphas[step+1], a.ID, a.P, a.D, b.ID, b.P, b.D)
				}
				if !okA && okB && rb >= len(hi.Entries) {
					t.Fatalf("%s: impossible rank for %d", label, b.ID)
				}
			}
		}
	}
}

// TestMetamorphicProperties runs the property suite against both engine
// flavors, re-checking after every interleaved churn round.
func TestMetamorphicProperties(t *testing.T) {
	ds := clusteredDS(t, 220, 101)
	opts := core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, CacheT: 25, Seed: 101, UpdateMaxBatch: 16}
	mono, err := core.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	sharded, err := shard.New(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	engines := []struct {
		name string
		e    queryEngine
	}{{"mono", mono}, {"sharded-4", sharded}}

	users := locatedIDs(ds)
	b := ds.Bounds()
	rng := rand.New(rand.NewSource(202))
	rounds := 4
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		if round > 0 {
			// Interleaved churn applied identically to both flavors.
			for i := 0; i < 25; i++ {
				switch rng.Intn(4) {
				case 0:
					u, v := rng.Int31n(int32(ds.NumUsers())), rng.Int31n(int32(ds.NumUsers()))
					if u == v {
						continue
					}
					w := 0.05 + rng.Float64()
					for _, eng := range engines {
						if err := eng.e.AddFriendAsync(u, v, w); err != nil {
							t.Fatal(err)
						}
					}
				case 1:
					u, v := rng.Int31n(int32(ds.NumUsers())), rng.Int31n(int32(ds.NumUsers()))
					if u == v {
						continue
					}
					for _, eng := range engines {
						if err := eng.e.RemoveFriendAsync(u, v); err != nil {
							t.Fatal(err)
						}
					}
				default:
					id := int32(users[rng.Intn(len(users))])
					to := spatial.Point{X: b.MinX + rng.Float64()*b.Width(), Y: b.MinY + rng.Float64()*b.Height()}
					for _, eng := range engines {
						if err := eng.e.MoveUserAsync(id, to); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			for _, eng := range engines {
				eng.e.Flush()
			}
		}
		for probe := 0; probe < 2; probe++ {
			q := users[rng.Intn(len(users))]
			if _, ok := mono.UserLocation(int32(q)); !ok {
				continue
			}
			k := 3 + rng.Intn(10)
			alpha := 0.1 + 0.8*rng.Float64()
			for _, eng := range engines {
				for _, algo := range metaAlgorithms {
					label := fmt.Sprintf("round %d %s %v q=%d", round, eng.name, algo, q)
					res, err := eng.e.Query(algo, q, core.Params{K: k, Alpha: alpha})
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					checkDuplicateFreedom(t, label, res)
					checkKPrefix(t, label, eng.e, algo, q, k, alpha)
				}
				// α-consistency is algorithm-independent; probe the flagship
				// and one baseline per flavor to keep the round bounded.
				checkAlphaConsistency(t, fmt.Sprintf("round %d %s AIS q=%d", round, eng.name, q), eng.e, core.AIS, q, k)
				checkAlphaConsistency(t, fmt.Sprintf("round %d %s TSA q=%d", round, eng.name, q), eng.e, core.TSA, q, k)
			}
		}
	}
}

// ---- differential churn test ----

type edgeKey [2]int32

func mkKey(u, v int32) edgeKey {
	if u > v {
		u, v = v, u
	}
	return edgeKey{u, v}
}

// seedEdgeModel captures the dataset's normalized edges as the independent
// oracle model.
func seedEdgeModel(ds *dataset.Dataset) map[edgeKey]float64 {
	model := make(map[edgeKey]float64)
	for v := 0; v < ds.NumUsers(); v++ {
		nbrs, ws := ds.G.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			model[mkKey(int32(v), u)] = ws[i]
		}
	}
	return model
}

// oracleEntries computes the expected top-k fully independently: exact
// Dijkstra on a graph rebuilt from the edge model, locations read through
// the reference engine's published epoch, same ranking and tie rules.
func oracleEntries(n int, model map[edgeKey]float64, locate func(int32) (spatial.Point, bool),
	q graph.VertexID, prm core.Params) []core.Entry {
	b := graph.NewBuilder(n)
	for k, w := range model {
		_ = b.AddEdge(k[0], k[1], w)
	}
	dist := b.MustBuild().DistancesFrom(q)
	qpt, qok := locate(int32(q))
	var cands []core.Entry
	for v := 0; v < n; v++ {
		if graph.VertexID(v) == q {
			continue
		}
		p := dist[v]
		d := math.Inf(1)
		if pt, ok := locate(int32(v)); ok && qok {
			d = pt.Dist(qpt)
		}
		f := prm.Alpha*p + (1-prm.Alpha)*d
		if math.IsInf(f, 1) || math.IsNaN(f) {
			continue
		}
		cands = append(cands, core.Entry{ID: int32(v), F: f, P: p, D: d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].F != cands[b].F {
			return cands[a].F < cands[b].F
		}
		return cands[a].ID < cands[b].ID
	})
	if len(cands) > prm.K {
		cands = cands[:prm.K]
	}
	return cands
}

// TestDifferentialShardChurnEquivalence extends the core package's
// TestRandomizedSocialChurnEquivalence across engine flavors: one randomized
// interleaved stream of moves and edge ops replays into a monolithic engine,
// a 1-shard engine and an 8-shard engine; after every Flush all three must
// agree exactly — IDs included — with each other and with the independent
// brute-force oracle.
func TestDifferentialShardChurnEquivalence(t *testing.T) {
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7000 + trial)))
			n := 80 + rng.Intn(120)
			ds := clusteredDS(t, n, int64(trial))
			budget := 1 << 30
			if trial%2 == 1 {
				budget = 4 // force the disable+rebuild landmark path
			}
			opts := core.Options{
				GridS: 3 + rng.Intn(3), GridLevels: 1 + rng.Intn(2),
				NumLandmarks: 2 + rng.Intn(5), CacheT: 4 + rng.Intn(30),
				Seed: int64(trial), LandmarkRepairBudget: budget,
				UpdateMaxBatch: 1 + rng.Intn(32),
			}
			mono, err := core.NewEngine(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer mono.Close()
			s1, err := shard.New(ds, 1, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s1.Close()
			s8, err := shard.New(ds, 8, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s8.Close()
			engines := []queryEngine{mono, s1, s8}
			names := []string{"mono", "shard-1", "shard-8"}

			model := seedEdgeModel(ds)
			users := locatedIDs(ds)
			b := ds.Bounds()

			for round := 0; round < 5; round++ {
				for op := 0; op < 5+rng.Intn(25); op++ {
					sync := rng.Intn(2) == 0
					switch rng.Intn(6) {
					case 0, 1: // edge upsert
						u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
						if u == v {
							continue
						}
						w := 0.05 + rng.Float64()
						for _, e := range engines {
							var err error
							if sync {
								err = e.ApplyUpdates([]core.Update{{Kind: core.OpEdgeUpsert, U: u, V: v, W: w}})
							} else {
								err = e.AddFriendAsync(u, v, w)
							}
							if err != nil {
								t.Fatal(err)
							}
						}
						model[mkKey(u, v)] = w
					case 2: // edge removal
						u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
						if u == v {
							continue
						}
						for _, e := range engines {
							var err error
							if sync {
								err = e.ApplyUpdates([]core.Update{{Kind: core.OpEdgeRemove, U: u, V: v}})
							} else {
								err = e.RemoveFriendAsync(u, v)
							}
							if err != nil {
								t.Fatal(err)
							}
						}
						delete(model, mkKey(u, v))
					case 3: // location removal
						id := int32(users[rng.Intn(len(users))])
						for _, e := range engines {
							if err := e.RemoveUserLocationAsync(id); err != nil {
								t.Fatal(err)
							}
						}
					default: // move (random point: frequently crosses shards)
						id := int32(users[rng.Intn(len(users))])
						to := spatial.Point{X: b.MinX + rng.Float64()*b.Width(), Y: b.MinY + rng.Float64()*b.Height()}
						for _, e := range engines {
							var err error
							if sync {
								err = e.ApplyUpdates([]core.Update{{ID: id, To: to}})
							} else {
								err = e.MoveUserAsync(id, to)
							}
							if err != nil {
								t.Fatal(err)
							}
						}
					}
				}
				for _, e := range engines {
					e.Flush()
				}

				for probe := 0; probe < 3; probe++ {
					q := users[rng.Intn(len(users))]
					if _, ok := mono.UserLocation(int32(q)); !ok {
						continue
					}
					prm := core.Params{K: 1 + rng.Intn(12), Alpha: 0.05 + 0.9*rng.Float64()}
					want := oracleEntries(n, model, mono.UserLocation, q, prm)
					for ei, e := range engines {
						for _, algo := range []core.Algorithm{core.AIS, core.TSA, core.SFA, core.SPA, core.BruteForce} {
							got, err := e.Query(algo, q, prm)
							if err != nil {
								t.Fatalf("round %d %s %v (q=%d): %v", round, names[ei], algo, q, err)
							}
							assertOracleMatch(t, fmt.Sprintf("round %d %s %v q=%d k=%d α=%.3f", round, names[ei], algo, q, prm.K, prm.Alpha), got.Entries, want)
						}
						// Cross-flavor exactness on the flagship: sharded
						// results must equal the monolith's bit for bit.
						if ei > 0 {
							ref, err := engines[0].Query(core.AIS, q, prm)
							if err != nil {
								t.Fatal(err)
							}
							got, err := e.Query(core.AIS, q, prm)
							if err != nil {
								t.Fatal(err)
							}
							assertExactMatch(t, fmt.Sprintf("round %d %s vs mono q=%d", round, names[ei], q), got.Entries, ref.Entries)
						}
					}
				}
			}
			// Post-churn: restore landmarks everywhere, final exact sweep.
			for _, e := range engines {
				e.RebuildLandmarks()
			}
			q := users[rng.Intn(len(users))]
			if _, ok := mono.UserLocation(int32(q)); ok {
				prm := core.Params{K: 10, Alpha: 0.3}
				want := oracleEntries(n, model, mono.UserLocation, q, prm)
				for ei, e := range engines {
					got, err := e.Query(core.AIS, q, prm)
					if err != nil {
						t.Fatal(err)
					}
					assertOracleMatch(t, "post-rebuild "+names[ei], got.Entries, want)
				}
			}
		})
	}
}

// assertOracleMatch compares against the independently-computed oracle:
// scores to float tolerance, IDs exact wherever scores are distinct.
func assertOracleMatch(t *testing.T, label string, got, want []core.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.Abs(g.F-w.F) > 1e-9 {
			t.Fatalf("%s: rank %d f=%v, want %v", label, i, g.F, w.F)
		}
		if g.ID != w.ID && math.Abs(g.F-w.F) > 1e-12 {
			t.Fatalf("%s: rank %d id=%d, want %d", label, i, g.ID, w.ID)
		}
	}
}

// assertExactMatch requires rank-by-rank agreement: scores within 1e-12
// (incremental landmark repair vs batch-boundary differences can pick a
// different — equally shortest — path representative, which shifts a score
// by an ulp) and identical IDs except across such ulp-level ties.
func assertExactMatch(t *testing.T, label string, got, want []core.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d", label, len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if math.Abs(g.F-w.F) > 1e-12 {
			t.Fatalf("%s: rank %d f=%v, want %v", label, i, g.F, w.F)
		}
		if g.ID != w.ID {
			t.Fatalf("%s: rank %d id=%d, want %d (f %v vs %v)", label, i, g.ID, w.ID, g.F, w.F)
		}
	}
}

// TestQueryBatchClampsBothFlavors pins the QueryBatch worker-clamping
// contract on both engines: workers ≤ 0 selects GOMAXPROCS, worker counts
// beyond the batch clamp to it, empty batches return empty, and every slot
// is filled in input order.
func TestQueryBatchClampsBothFlavors(t *testing.T) {
	ds := clusteredDS(t, 120, 303)
	opts := core.Options{GridS: 3, GridLevels: 1, NumLandmarks: 3, Seed: 303}
	mono, err := core.NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer mono.Close()
	sharded, err := shard.New(ds, 4, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer sharded.Close()
	users := locatedIDs(ds)

	batch := make([]core.BatchQuery, 5)
	for i := range batch {
		batch[i] = core.BatchQuery{Algo: core.AIS, Q: users[i%len(users)], Params: core.Params{K: 4, Alpha: 0.4}}
	}
	// One poisoned slot: its error must stay in its slot.
	batch[3].Q = graph.VertexID(ds.NumUsers() + 5)

	for _, eng := range []struct {
		name string
		e    queryEngine
	}{{"mono", mono}, {"sharded-4", sharded}} {
		for _, workers := range []int{-7, 0, 1, 2, len(batch), len(batch) + 50, 1 << 20} {
			out := eng.e.QueryBatch(batch, workers)
			if len(out) != len(batch) {
				t.Fatalf("%s workers=%d: %d results for %d queries", eng.name, workers, len(out), len(batch))
			}
			for i, r := range out {
				if i == 3 {
					if r.Err == nil {
						t.Fatalf("%s workers=%d: poisoned slot succeeded", eng.name, workers)
					}
					continue
				}
				if r.Err != nil || r.Result == nil {
					t.Fatalf("%s workers=%d slot %d: %v", eng.name, workers, i, r.Err)
				}
				if r.Result.Query != batch[i].Q {
					t.Fatalf("%s workers=%d: slot %d answered q=%d, want %d", eng.name, workers, i, r.Result.Query, batch[i].Q)
				}
			}
		}
		if out := eng.e.QueryBatch(nil, 8); len(out) != 0 {
			t.Fatalf("%s: empty batch returned %d results", eng.name, len(out))
		}
		if out := eng.e.QueryBatch([]core.BatchQuery{batch[0]}, -1); len(out) != 1 || out[0].Err != nil {
			t.Fatalf("%s: single-query batch with negative workers misbehaved", eng.name)
		}
	}
}
