package core

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestChurnInterleavedCHEquivalence is the *-CH churn-equivalence property:
// random interleaved edge batches (inserts, reweights, removals, through both
// the sync and async paths), then Flush + synchronous rebuild settle — after
// which SFA-CH/SPA-CH/TSA-CH must equal a from-scratch oracle on the mutated
// graph. Trials alternate repair budgets so both the in-place repair path and
// the rebuild fallback are exercised.
func TestChurnInterleavedCHEquivalence(t *testing.T) {
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("seed=%d", trial), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7100 + trial)))
			n := 30 + rng.Intn(70)
			ds := mkDataset(t, rng, n, 0.15*rng.Float64(), false)
			opts := Options{
				BuildCH: true,
				Seed:    int64(trial),
			}
			switch trial % 3 {
			case 1:
				opts.CHRepairBudget = 2 // tiny cone: repairs mostly fall back
			case 2:
				opts.CHRepairBudget = -1 // repair disabled: rebuild-only path
			}
			e := mkEngine(t, ds, opts)
			defer e.Close()
			model := seedModel(ds)
			users := locatedUsers(ds)
			prm := Params{K: 5, Alpha: 0.3}

			for round := 0; round < 5; round++ {
				insertOnly := round%2 == 0 // alternate repairable and not
				for op := 0; op < 2+rng.Intn(12); op++ {
					u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
					if u == v {
						continue
					}
					k := mkEdgeKey(u, v)
					var err error
					if insertOnly || rng.Intn(3) != 0 {
						w := model[k]
						if w == 0 || !insertOnly {
							w = 0.05 + rng.Float64()
						} else {
							w *= 0.3 + 0.7*rng.Float64() // repairable decrease
						}
						if rng.Intn(2) == 0 {
							err = e.AddFriendAsync(u, v, w)
						} else {
							err = e.AddFriend(u, v, w)
						}
						model[k] = w
					} else {
						if rng.Intn(2) == 0 {
							err = e.RemoveFriendAsync(u, v)
						} else {
							err = e.RemoveFriend(u, v)
						}
						delete(model, k)
					}
					if err != nil {
						t.Fatal(err)
					}
				}
				e.Flush()
				e.RebuildLandmarks()
				e.RebuildCH()
				sn := e.Snapshot()
				if !sn.HierarchyFresh() {
					t.Fatalf("round %d: hierarchy stale after rebuild settle (built %d, social %d)",
						round, sn.HierarchyEpoch(), sn.SocialEpoch())
				}
				for probe := 0; probe < 3; probe++ {
					q := users[rng.Intn(len(users))]
					want := oracleTopK(e, model, q, prm)
					for _, algo := range []Algorithm{SFACH, SPACH, TSACH} {
						got, err := e.Query(algo, q, prm)
						if err != nil {
							t.Fatalf("round %d: %v refused after settle: %v", round, algo, err)
						}
						sameRanking(t, fmt.Sprintf("round %d %v", round, algo), got, want)
					}
				}
			}
			st := e.SocialStats()
			if trial%3 == 0 && st.CHRepairs == 0 {
				t.Error("insert-heavy trial with default budget never took the in-place repair path")
			}
			if trial%3 == 2 && st.CHRepairs != 0 {
				t.Errorf("repair disabled but CHRepairs = %d", st.CHRepairs)
			}
		})
	}
}

// TestCloseMidRebuildStopsBackgroundWork is the -race shutdown regression:
// Close must wait for (or cancel) in-flight landmark and CH background
// rebuilds, so no goroutine outlives it, concurrently with churn still being
// enqueued. Run under -race this also proves Close never races the rebuild
// loops' installs.
func TestCloseMidRebuildStopsBackgroundWork(t *testing.T) {
	for round := 0; round < 4; round++ {
		before := runtime.NumGoroutine()
		rng := rand.New(rand.NewSource(int64(6200 + round)))
		ds := mkDataset(t, rng, 150, 0, false)
		e := mkEngine(t, ds, Options{
			BuildCH:              true,
			LandmarkRepairBudget: 1, // every removal disables: rebuilds always in flight
			CHRepairBudget:       -1,
		})
		// Kick churn from two goroutines (sync + async paths) and Close in
		// the middle of it.
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(100*round + g)))
				for i := 0; i < 200; i++ {
					u, v := rng.Int31n(150), rng.Int31n(150)
					if u == v {
						continue
					}
					if i%2 == 0 {
						_ = e.AddFriend(u, v, 0.1+rng.Float64())
					} else {
						_ = e.RemoveFriendAsync(u, v) // may fail after Close: fine
					}
				}
			}()
		}
		time.Sleep(time.Duration(rng.Intn(3)) * time.Millisecond)
		e.Close()
		e.Close() // idempotent
		wg.Wait()
		// Queries stay valid after Close.
		if _, err := e.Query(AIS, locatedUsers(ds)[0], Params{K: 3, Alpha: 0.5}); err != nil {
			t.Fatalf("post-Close query: %v", err)
		}
		// Close waited for the rebuild loops, so the goroutine count must
		// settle back (generous retries absorb unrelated runtime goroutines).
		deadline := time.Now().Add(10 * time.Second)
		for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		if got := runtime.NumGoroutine(); got > before+2 {
			t.Fatalf("round %d: %d goroutines after Close, started with %d", round, got, before)
		}
	}
}

// TestSustainedChurnLandmarkRecovery: a burst of disabling churn (repair
// budget 1, so nearly every effective op disables a landmark) must always
// converge — once churn stops, the background rebuild (plus the
// forced-install fallback if the race was lost 8 times mid-burst) must
// restore every landmark WITHOUT any synchronous rebuild call. Whether a
// forced install actually fires here is scheduler-dependent; the
// deterministic forced-install coverage lives in the aggindex tests
// (TestForcedInstallBoundsLandmarkStarvation) via the install-race seam, and
// background *CH* rebuild convergence is covered end-to-end in
// httpapi.TestCHVariantsOverHTTP (a full contraction is too slow under -race
// to bound here).
func TestSustainedChurnLandmarkRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	n := 400
	ds := mkDataset(t, rng, n, 0, false)
	e := mkEngine(t, ds, Options{
		LandmarkRepairBudget:  1,
		ForcedInstallInterval: time.Millisecond,
	})
	defer e.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 3; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + g)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				u, v := rng.Int31n(int32(n)), rng.Int31n(int32(n))
				if u == v {
					continue
				}
				if rng.Intn(2) == 0 {
					_ = e.AddFriend(u, v, 0.1+rng.Float64())
				} else {
					_ = e.RemoveFriend(u, v)
				}
			}
		}()
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if e.SocialStats().LandmarkDisables == 0 {
		t.Fatal("churn burst never disabled a landmark — stress exercised nothing")
	}
	// No unbounded degradation window: with churn stopped, the background
	// loop must converge on its own.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if e.SocialStats().DisabledLandmarks == 0 {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	st := e.SocialStats()
	t.Fatalf("window never closed: %d landmarks still disabled (forced installs: %d)",
		st.DisabledLandmarks, st.LandmarkForcedInstalls)
}
