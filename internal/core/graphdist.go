package core

import (
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
)

// graphDist is the §5.2 distance submodule of AIS (Algorithm 3): repeated
// exact social-distance computations from the fixed query vertex to varying
// targets, with both computation-sharing optimizations:
//
//   - forward-heap caching: the forward search is a single plain Dijkstra
//     whose heap and settled set persist across calls (plain, not A*,
//     precisely so the heap keys stay target-independent);
//   - distance caching: targets already settled by the forward search, or
//     lying on a previously reconstructed shortest path (table T), answer
//     without any search.
//
// The reverse search is a landmark A* from the target toward the query
// vertex. Its head key certifies termination (see the correctness argument
// in DESIGN.md §4 — the same stopping rule as Algorithm 3 line 7).
type graphDist struct {
	g        *graph.Graph
	lm       *landmark.Set
	q        graph.VertexID
	fwd      *graph.DijkstraIterator
	revPool  *graph.AStarPool
	hToQ     graph.Heuristic
	pathDist map[graph.VertexID]float64 // table T: distance-from-q of path members
	st       *Stats
	// fwdEvery throttles how often the shared forward search advances: one
	// forward pop per fwdEvery reverse pops. Algorithm 3 alternates 1:1;
	// a larger value spends less on speculative forward growth (the
	// reverse searches are landmark-guided and cheap) at the price of a
	// slower-growing β for delayed evaluation. See the gdfwd ablation bench.
	fwdEvery int
	iter     int
}

func newGraphDist(g *graph.Graph, lm *landmark.Set, q graph.VertexID, revPool *graph.AStarPool, st *Stats) *graphDist {
	gd := &graphDist{}
	gd.reset(g, lm, q, &graph.DijkstraIterator{}, revPool, lm.HeuristicTo(q), st, 1)
	return gd
}

// reset re-arms the submodule in place for a fresh query, reusing the path
// table's buckets and the caller-provided (typically pooled) forward
// iterator. fwd is re-armed from q; hToQ must estimate distances to q against
// lm's epoch.
func (gd *graphDist) reset(g *graph.Graph, lm *landmark.Set, q graph.VertexID,
	fwd *graph.DijkstraIterator, revPool *graph.AStarPool, hToQ graph.Heuristic, st *Stats, fwdEvery int) {
	fwd.Reset(g, q)
	gd.g = g
	gd.lm = lm
	gd.q = q
	gd.fwd = fwd
	gd.revPool = revPool
	gd.hToQ = hToQ
	if gd.pathDist == nil {
		gd.pathDist = make(map[graph.VertexID]float64)
	} else {
		clear(gd.pathDist)
	}
	gd.st = st
	gd.fwdEvery = fwdEvery
	gd.iter = 0
	// Settle the source immediately so reverse searches can always meet a
	// non-empty forward tree.
	if _, _, ok := gd.fwd.Next(); ok {
		st.SocialPops++
	}
}

// beta is the §5.3 bound: the distance of the last vertex settled by the
// shared forward search, lower-bounding p(v_q, v) for every vertex the
// forward search has not visited.
func (gd *graphDist) beta() float64 { return gd.fwd.LastKey() }

// known returns the exact distance when it is available for free — from the
// forward settled set or the path table T.
func (gd *graphDist) known(v graph.VertexID) (float64, bool) {
	if d, ok := gd.fwd.SettledDist(v); ok {
		return d, true
	}
	if d, ok := gd.pathDist[v]; ok {
		return d, true
	}
	return 0, false
}

// dist computes the exact social distance p(v_q, v) — Algorithm 3.
func (gd *graphDist) dist(v graph.VertexID) float64 {
	gd.st.GraphDistCalls++
	if v == gd.q {
		return 0
	}
	if d, ok := gd.known(v); ok {
		return d
	}
	if gd.fwd.Exhausted() {
		// The query's component is fully settled and v is not in it.
		return graph.Infinity
	}

	rev := gd.revPool.NewSearch(gd.g, v, gd.hToQ)
	// A realized landmark detour (q→landmark→v) seeds the best-known
	// distance, letting many reverse searches certify termination after a
	// handful of pops (an ALT-style strengthening of Algorithm 3; exactness
	// argument in DESIGN.md §4: at termination minDist equals the true
	// distance whenever any path of length minDist exists, and the landmark
	// detour is such a path).
	minDist := gd.lm.UpperBound(gd.q, v)
	meet := graph.VertexID(-1)

	for {
		// Either frontier's head key certifies optimality (both searches
		// settle exact distances: forward is plain Dijkstra, reverse uses a
		// consistent landmark heuristic).
		revKey, revOK := rev.HeadKey()
		if !revOK {
			break // reverse frontier exhausted
		}
		if minDist <= revKey {
			break
		}
		if fwdKey, ok := gd.fwd.HeadKey(); ok && minDist <= fwdKey {
			break
		}
		// Forward step (shared Dijkstra), throttled by fwdEvery.
		gd.iter++
		if gd.iter%gd.fwdEvery == 0 {
			if vf, df, ok := gd.fwd.Next(); ok {
				gd.st.SocialPops++
				if dr, settled := rev.SettledDist(vf); settled {
					if d := df + dr; d < minDist {
						minDist, meet = d, vf
					}
				}
			}
		}
		// Reverse step (landmark A*).
		vr, dr, ok := rev.Pop()
		if !ok {
			break
		}
		gd.st.SocialPops++
		gd.st.ReversePops++
		if df, settled := gd.fwd.SettledDist(vr); settled {
			if d := df + dr; d < minDist {
				minDist, meet = d, vr
			}
			// Algorithm 3 line 18: no need to push vr's neighbors — any
			// continuation through vr is dominated by this meeting path.
		} else {
			rev.Expand(vr)
		}
	}

	if meet >= 0 {
		// Distance caching: record the reverse portion of the shortest path
		// in T. (The forward portion is already covered by the forward
		// settled set.) By prefix optimality, every vertex x on the path has
		// p(v_q, x) = minDist − g_rev(x).
		for x := meet; x >= 0; x = rev.ParentOf(x) {
			if gx, ok := rev.LabelDist(x); ok {
				gd.pathDist[x] = minDist - gx
			}
		}
	}
	return minDist
}

// freshBidirectional is the unshared evaluator of AIS-BID: a fresh
// bidirectional ALT search per target, exactly the [25] baseline of Fig. 10.
type freshBidirectional struct {
	g       *graph.Graph
	lm      *landmark.Set
	q       graph.VertexID
	hToQ    graph.Heuristic
	fwdPool *graph.AStarPool
	revPool *graph.AStarPool
	st      *Stats
}

func (fb *freshBidirectional) dist(v graph.VertexID) float64 {
	fb.st.GraphDistCalls++
	if v == fb.q {
		return 0
	}
	res := graph.BidirectionalDijkstra(fb.g, fb.q, v, fb.lm.HeuristicTo(v), fb.hToQ, fb.fwdPool, fb.revPool)
	fb.st.SocialPops += res.Pops
	return res.Dist
}
