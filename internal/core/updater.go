package core

import (
	"fmt"
	"sync/atomic"
	"time"

	"ssrq/internal/aggindex"
	"ssrq/internal/spatial"
)

// Updater is the engine's asynchronous update-ingestion pipeline: a single
// goroutine that drains a bounded queue of location updates, coalesces
// redundant moves of the same user (last write wins), and applies them in
// batches of at most Options.UpdateMaxBatch, publishing one index epoch per
// batch. Batching is what makes the snapshot design cheap under churn — the
// copy-on-write duplication and the upward summary propagation are paid once
// per batch instead of once per move.
//
// The updater starts lazily on the first MoveUserAsync/RemoveUserAsync call
// and runs until Engine.Close. Flush is the read-your-writes barrier: it
// returns once every update enqueued before the call is applied and
// published.
type Updater struct {
	agg      applier
	ch       chan updateMsg
	done     chan struct{}
	closed   atomic.Bool
	maxBatch int

	pending   atomic.Int64 // enqueued but not yet applied
	applied   atomic.Int64 // ops applied (before coalescing)
	batches   atomic.Int64 // epochs published by the updater
	coalesced atomic.Int64 // ops absorbed by a newer op for the same user
}

// applier is the slice of aggindex.Index the updater needs (test seam).
type applier interface{ Apply(ops []Update) }

type updateMsg struct {
	op    Update
	flush chan struct{} // non-nil: barrier marker — apply pending, then close
	quit  bool          // terminate after applying pending
}

func newUpdater(agg applier, queueCap, maxBatch int) *Updater {
	u := &Updater{
		agg:      agg,
		ch:       make(chan updateMsg, queueCap),
		done:     make(chan struct{}),
		maxBatch: maxBatch,
	}
	go u.loop()
	return u
}

// enqueue queues one update, blocking for backpressure when the queue is
// full. A concurrent close never strands the sender: once the loop exits,
// the done channel unblocks it with an error.
func (u *Updater) enqueue(op Update) error {
	if u.closed.Load() {
		return fmt.Errorf("core: engine closed")
	}
	u.pending.Add(1)
	select {
	case u.ch <- updateMsg{op: op}:
		return nil
	case <-u.done:
		u.pending.Add(-1)
		return fmt.Errorf("core: engine closed")
	}
}

// flush blocks until every previously enqueued update is applied and
// published. Returns (without the barrier) if the pipeline shuts down
// concurrently — after Close there is nothing left to wait for.
func (u *Updater) flush() {
	if u.closed.Load() {
		return
	}
	ack := make(chan struct{})
	select {
	case u.ch <- updateMsg{flush: ack}:
	case <-u.done:
		return
	}
	select {
	case <-ack:
	case <-u.done:
	}
}

// close drains and applies whatever is queued, then stops the goroutine.
func (u *Updater) close() {
	if u.closed.Swap(true) {
		<-u.done
		return
	}
	u.ch <- updateMsg{quit: true}
	<-u.done
}

func (u *Updater) loop() {
	defer close(u.done)
	buf := make([]Update, 0, u.maxBatch)
	apply := func() {
		if len(buf) == 0 {
			return
		}
		ops := coalesceUpdates(buf)
		u.agg.Apply(ops)
		u.applied.Add(int64(len(buf)))
		u.coalesced.Add(int64(len(buf) - len(ops)))
		u.batches.Add(1)
		u.pending.Add(-int64(len(buf)))
		buf = buf[:0]
	}
	drainAfterQuit := func() {
		// Release anything that raced with Close: drop queued ops (counted
		// out of pending) and unblock flushers waiting on their ack.
		for {
			select {
			case m := <-u.ch:
				switch {
				case m.flush != nil:
					close(m.flush)
				case !m.quit:
					u.pending.Add(-1)
				}
			default:
				return
			}
		}
	}
	for {
		msg := <-u.ch
		if msg.quit {
			apply()
			drainAfterQuit()
			return
		}
		if msg.flush != nil {
			apply()
			close(msg.flush)
			continue
		}
		buf = append(buf, msg.op)
		// Drain whatever else is already queued — up to the batch cap — so a
		// burst of moves becomes one epoch instead of many.
		for len(buf) < u.maxBatch {
			select {
			case m := <-u.ch:
				if m.quit {
					apply()
					drainAfterQuit()
					return
				}
				if m.flush != nil {
					apply()
					close(m.flush)
					continue
				}
				buf = append(buf, m.op)
			default:
				goto drained
			}
		}
	drained:
		apply()
	}
}

// coalesceKey identifies the state one op writes: a user's location, or an
// unordered friend pair's edge.
type coalesceKey struct {
	edge bool
	a, b int32
}

func keyOf(op Update) coalesceKey {
	if op.Kind == aggindex.OpLocation {
		return coalesceKey{a: op.ID}
	}
	a, b := op.U, op.V
	if a > b {
		a, b = b, a
	}
	return coalesceKey{edge: true, a: a, b: b}
}

// coalesceUpdates keeps only the newest op per coalescing key (per user for
// location ops, per unordered pair for edge ops), preserving first-seen
// order. Ops with distinct keys commute — locations and edges live in
// disjoint state — and edge ops are upsert/delete style, so last-write-wins
// per key is semantics-preserving.
func coalesceUpdates(buf []Update) []Update {
	seen := make(map[coalesceKey]int, len(buf))
	out := make([]Update, 0, len(buf))
	for _, op := range buf {
		k := keyOf(op)
		if i, ok := seen[k]; ok {
			out[i] = op
			continue
		}
		seen[k] = len(out)
		out = append(out, op)
	}
	return out
}

// ensureUpdater starts the pipeline on first use.
func (e *Engine) ensureUpdater() *Updater {
	e.upOnce.Do(func() {
		e.updater.Store(newUpdater(e.agg, e.opts.UpdateQueueCap, e.opts.UpdateMaxBatch))
	})
	return e.updater.Load()
}

// MoveUserAsync enqueues a relocation (normalized coordinates) on the
// update pipeline and returns immediately (blocking only when the queue is
// full for backpressure). The move becomes visible when the updater
// publishes the epoch containing it; call Flush for a read-your-writes
// barrier.
func (e *Engine) MoveUserAsync(id int32, to spatial.Point) error {
	u := Update{ID: id, To: to}
	if err := e.ValidateUpdate(u); err != nil {
		return err
	}
	return e.ensureUpdater().enqueue(u)
}

// RemoveUserLocationAsync enqueues a location removal on the update
// pipeline.
func (e *Engine) RemoveUserLocationAsync(id int32) error {
	u := Update{ID: id, Remove: true}
	if err := e.ValidateUpdate(u); err != nil {
		return err
	}
	return e.ensureUpdater().enqueue(u)
}

// Flush blocks until every update enqueued (by any goroutine) before the
// call has been applied and published — the barrier that gives
// MoveUserAsync read-your-writes semantics. A no-op when the pipeline never
// started.
func (e *Engine) Flush() {
	if u := e.loadUpdater(); u != nil {
		u.flush()
	}
}

// Close drains and applies any queued updates, stops the update pipeline,
// then stops the index's background maintenance: in-flight landmark/CH
// rebuilds abort at their next cancellation point and Close waits for their
// goroutines to exit, so tests and servers shut down without leaks.
// Idempotent. Updates enqueued concurrently with Close may be dropped;
// queries remain valid after Close (stale structures then stay stale until
// an explicit RebuildLandmarks/RebuildCH).
func (e *Engine) Close() {
	if u := e.loadUpdater(); u != nil {
		u.close()
	}
	e.agg.Close()
}

// loadUpdater returns the pipeline if it ever started, without starting it.
func (e *Engine) loadUpdater() *Updater { return e.updater.Load() }

// UpdateStats reports the state of the epoch/update pipeline, the numbers
// the HTTP /stats endpoint and the churn experiment surface.
type UpdateStats struct {
	// Epoch is the published index version (0 = construction state).
	Epoch uint64
	// SocialEpoch is the published social graph version (0 = construction
	// graph, +1 per batch containing effective edge ops).
	SocialEpoch uint64
	// SnapshotAge is how long ago the current epoch was published.
	SnapshotAge time.Duration
	// PendingUpdates counts async updates enqueued but not yet published.
	PendingUpdates int64
	// AppliedUpdates counts async updates applied (pre-coalescing).
	AppliedUpdates int64
	// AppliedBatches counts epochs published by the updater.
	AppliedBatches int64
	// CoalescedUpdates counts updates absorbed by a newer update for the
	// same user before reaching the index.
	CoalescedUpdates int64
}

// UpdateStats returns a point-in-time view of the update pipeline.
func (e *Engine) UpdateStats() UpdateStats {
	sn := e.agg.Snapshot()
	st := UpdateStats{
		Epoch:       sn.Epoch(),
		SocialEpoch: sn.SocialEpoch(),
		SnapshotAge: time.Since(sn.PublishedAt()),
	}
	if u := e.loadUpdater(); u != nil {
		st.PendingUpdates = u.pending.Load()
		st.AppliedUpdates = u.applied.Load()
		st.AppliedBatches = u.batches.Load()
		st.CoalescedUpdates = u.coalesced.Load()
	}
	return st
}
