package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ssrq/internal/dataset"
	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// mkPathological builds datasets exercising corner cases.
func mkEdgelessDataset(t *testing.T, n int) *dataset.Dataset {
	t.Helper()
	g := graph.NewBuilder(n).MustBuild()
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: float64(i), Y: float64(i % 3)}
		located[i] = true
	}
	ds, err := dataset.New("edgeless", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestEdgelessGraph(t *testing.T) {
	// No edges at all: every user is socially unreachable, so with
	// 0 < α < 1 every f is +Inf and results are empty.
	ds := mkEdgelessDataset(t, 20)
	e := mkEngine(t, ds, Options{NumLandmarks: 2})
	for _, algo := range allNonCHAlgorithms {
		res, err := e.Query(algo, 0, Params{K: 5, Alpha: 0.5})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Entries) != 0 {
			t.Fatalf("%v returned %d entries on an edgeless graph", algo, len(res.Entries))
		}
	}
}

func TestTwoUserDataset(t *testing.T) {
	b := graph.NewBuilder(2)
	_ = b.AddEdge(0, 1, 1)
	ds, err := dataset.New("pair", b.MustBuild(),
		[]spatial.Point{{X: 0, Y: 0}, {X: 1, Y: 1}}, []bool{true, true})
	if err != nil {
		t.Fatal(err)
	}
	e := mkEngine(t, ds, Options{NumLandmarks: 1})
	for _, algo := range allNonCHAlgorithms {
		res, err := e.Query(algo, 0, Params{K: 3, Alpha: 0.5})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Entries) != 1 || res.Entries[0].ID != 1 {
			t.Fatalf("%v: entries %+v", algo, res.Entries)
		}
	}
}

func TestAllUsersSamePoint(t *testing.T) {
	// Duplicate coordinates: spatial distances are all zero; ranking is
	// then purely social, and ties break deterministically.
	rng := rand.New(rand.NewSource(3))
	b := graph.NewBuilder(40)
	for v := 1; v < 40; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.1+rng.Float64())
	}
	pts := make([]spatial.Point, 40)
	located := make([]bool, 40)
	for i := range pts {
		pts[i] = spatial.Point{X: 5, Y: 5}
		located[i] = true
	}
	ds, err := dataset.New("same-point", b.MustBuild(), pts, located)
	if err != nil {
		t.Fatal(err)
	}
	e := mkEngine(t, ds, Options{})
	want, _ := e.Query(BruteForce, 0, Params{K: 10, Alpha: 0.5})
	for _, algo := range allNonCHAlgorithms {
		got, err := e.Query(algo, 0, Params{K: 10, Alpha: 0.5})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		sameRanking(t, algo.String(), got, want)
	}
}

func TestOnlyQueryLocated(t *testing.T) {
	// Everyone except the query user is unlocated: d = +Inf for all, so all
	// f are +Inf and the result must be empty.
	rng := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(30)
	for v := 1; v < 30; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 1)
	}
	pts := make([]spatial.Point, 30)
	located := make([]bool, 30)
	pts[0] = spatial.Point{X: 1, Y: 1}
	located[0] = true
	ds, err := dataset.New("lonely", b.MustBuild(), pts, located)
	if err != nil {
		t.Fatal(err)
	}
	e := mkEngine(t, ds, Options{})
	for _, algo := range allNonCHAlgorithms {
		res, err := e.Query(algo, 0, Params{K: 5, Alpha: 0.5})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if len(res.Entries) != 0 {
			t.Fatalf("%v returned %d entries with no located peers", algo, len(res.Entries))
		}
	}
}

func TestStarGraphHub(t *testing.T) {
	// Query from the hub of a star: all users one hop away, heavy ties.
	n := 50
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(0, graph.VertexID(v), 0.5)
	}
	rng := rand.New(rand.NewSource(7))
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: rng.Float64(), Y: rng.Float64()}
		located[i] = true
	}
	ds, err := dataset.New("star", b.MustBuild(), pts, located)
	if err != nil {
		t.Fatal(err)
	}
	e := mkEngine(t, ds, Options{})
	want, _ := e.Query(BruteForce, 0, Params{K: 7, Alpha: 0.4})
	for _, algo := range allNonCHAlgorithms {
		got, err := e.Query(algo, 0, Params{K: 7, Alpha: 0.4})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		sameRanking(t, algo.String(), got, want)
	}
}

func TestTopKProperty(t *testing.T) {
	// Property: topK over any entry sequence equals sorting and truncating.
	check := func(fs []float64, k8 uint8) bool {
		k := int(k8%10) + 1
		r := newTopK(k)
		type pair struct {
			f  float64
			id int32
		}
		var want []pair
		for i, f := range fs {
			f = math.Abs(f)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				continue
			}
			r.Consider(Entry{ID: int32(i), F: f})
			want = append(want, pair{f, int32(i)})
		}
		for i := 1; i < len(want); i++ {
			for j := i; j > 0 && (want[j].f < want[j-1].f || (want[j].f == want[j-1].f && want[j].id < want[j-1].id)); j-- {
				want[j], want[j-1] = want[j-1], want[j]
			}
		}
		if len(want) > k {
			want = want[:k]
		}
		got := r.Sorted()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].F != want[i].f || got[i].ID != want[i].id {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDistMatchesDijkstraProperty(t *testing.T) {
	// The GraphDist submodule (Algorithm 3 + caching + UB seeding) must
	// return exact distances for arbitrary target sequences.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		ds := mkDataset(t, rng, 40+rng.Intn(80), 0, trial%2 == 1)
		e := mkEngine(t, ds, Options{})
		q := locatedUsers(ds)[0]
		want := ds.G.DistancesFrom(q)
		var st Stats
		pools := e.getPools()
		gd := newGraphDist(ds.G, e.lm, q, pools.rev, &st)
		for probe := 0; probe < 40; probe++ {
			v := graph.VertexID(rng.Intn(ds.NumUsers()))
			got := gd.dist(v)
			if math.Abs(got-want[v]) > 1e-9 && !(math.IsInf(got, 1) && math.IsInf(want[v], 1)) {
				t.Fatalf("trial %d: dist(%d→%d) = %v, want %v", trial, q, v, got, want[v])
			}
		}
		e.putPools(pools)
	}
}

func TestGraphDistBetaMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := mkDataset(t, rng, 100, 0, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[0]
	var st Stats
	pools := e.getPools()
	defer e.putPools(pools)
	gd := newGraphDist(ds.G, e.lm, q, pools.rev, &st)
	prev := gd.beta()
	for probe := 0; probe < 30; probe++ {
		gd.dist(graph.VertexID(rng.Intn(100)))
		if b := gd.beta(); b < prev {
			t.Fatalf("beta decreased: %v -> %v", prev, b)
		} else {
			prev = b
		}
	}
}

func TestQuickCombineTerminatesOnSkewedData(t *testing.T) {
	// All users in a straight spatial line and a path graph socially:
	// extreme rates in both domains; TSA-QC must still terminate correctly.
	n := 60
	b := graph.NewBuilder(n)
	for v := 0; v < n-1; v++ {
		_ = b.AddEdge(graph.VertexID(v), graph.VertexID(v+1), 1)
	}
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: float64(i), Y: 0}
		located[i] = true
	}
	ds, err := dataset.New("line", b.MustBuild(), pts, located)
	if err != nil {
		t.Fatal(err)
	}
	e := mkEngine(t, ds, Options{})
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		want, _ := e.Query(BruteForce, 30, Params{K: 5, Alpha: alpha})
		got, err := e.Query(TSAQC, 30, Params{K: 5, Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		sameRanking(t, "TSA-QC-line", got, want)
	}
}

func TestAISAcrossGridShapes(t *testing.T) {
	// The AIS result must be invariant to grid geometry.
	rng := rand.New(rand.NewSource(17))
	ds := mkDataset(t, rng, 120, 0.1, false)
	q := locatedUsers(ds)[2]
	prm := Params{K: 8, Alpha: 0.35}
	var first *Result
	for _, cfg := range []struct{ s, levels int }{{2, 1}, {3, 2}, {4, 3}, {10, 1}, {5, 2}} {
		e := mkEngine(t, ds, Options{GridS: cfg.s, GridLevels: cfg.levels})
		res, err := e.Query(AIS, q, prm)
		if err != nil {
			t.Fatalf("s=%d levels=%d: %v", cfg.s, cfg.levels, err)
		}
		if first == nil {
			first = res
			continue
		}
		sameRanking(t, "grid-shape", res, first)
	}
}

func TestResultEntriesConsistentDecomposition(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	ds := mkDataset(t, rng, 90, 0.1, false)
	e := mkEngine(t, ds, Options{})
	q := locatedUsers(ds)[0]
	res, err := e.Query(AIS, q, Params{K: 10, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	spAll := ds.G.DistancesFrom(q)
	for _, entry := range res.Entries {
		if math.Abs(entry.P-spAll[entry.ID]) > 1e-9 {
			t.Fatalf("entry %d: P=%v, true=%v", entry.ID, entry.P, spAll[entry.ID])
		}
		if math.Abs(entry.D-ds.EuclideanDist(int32(q), entry.ID)) > 1e-9 {
			t.Fatalf("entry %d: D wrong", entry.ID)
		}
	}
}
