package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// TestSnapshotStressAsyncMovers is the -race synchronization proof for the
// lock-free query path: queriers run QueryBatch and single queries with no
// lock whatsoever while movers push sustained churn through the batching
// update pipeline (MoveUserAsync / RemoveUserLocationAsync). Every
// mid-flight result must be a valid top-k set against *some* published
// epoch, and after a Flush barrier the index must agree exactly with brute
// force — concurrent batched maintenance never corrupted membership or
// summaries.
func TestSnapshotStressAsyncMovers(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	const n = 220
	ds := mkDataset(t, rng, n, 0, false) // everyone located
	e := mkEngine(t, ds, Options{GridS: 5, GridLevels: 2, CacheT: 20, UpdateMaxBatch: 16})
	defer e.Close()

	// Movers touch only the upper half of the ID space; queriers query only
	// the lower half, so a query user never loses its location mid-test.
	var movable, queryable []graph.VertexID
	for _, u := range locatedUsers(ds) {
		if int(u) >= n/2 {
			movable = append(movable, u)
		} else {
			queryable = append(queryable, u)
		}
	}

	const (
		numQueriers   = 4
		numMovers     = 3
		queriesPerGor = 25
		movesPerGor   = 400
	)
	algos := []Algorithm{AIS, TSA, SFA, SPA, AISMinus, AISCache}
	var wg sync.WaitGroup
	var queriesDone, movesDone atomic.Int64
	errCh := make(chan error, numQueriers+numMovers)

	for g := 0; g < numMovers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mrng := rand.New(rand.NewSource(int64(500 + g)))
			for i := 0; i < movesPerGor; i++ {
				u := movable[mrng.Intn(len(movable))]
				var err error
				if mrng.Intn(5) == 0 {
					err = e.RemoveUserLocationAsync(int32(u))
				} else {
					err = e.MoveUserAsync(int32(u), spatial.Point{X: mrng.Float64(), Y: mrng.Float64()})
				}
				if err != nil {
					errCh <- err
					return
				}
				movesDone.Add(1)
			}
		}(g)
	}
	for g := 0; g < numQueriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(600 + g)))
			for i := 0; i < queriesPerGor; i++ {
				q := queryable[qrng.Intn(len(queryable))]
				algo := algos[(g+i)%len(algos)]
				k := 1 + qrng.Intn(10)
				alpha := 0.1 + 0.8*qrng.Float64()
				res, err := e.Query(algo, q, Params{K: k, Alpha: alpha})
				if err == nil {
					err = validTopK(res, q, k, alpha)
				}
				if err != nil {
					errCh <- fmt.Errorf("%v on user %d: %w", algo, q, err)
					return
				}
				queriesDone.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if queriesDone.Load() == 0 || movesDone.Load() == 0 {
		t.Fatalf("no overlap: %d queries, %d moves", queriesDone.Load(), movesDone.Load())
	}

	// Barrier, then post-churn integrity: every algorithm must agree exactly
	// with brute force on the mutated index.
	e.Flush()
	st := e.UpdateStats()
	if st.AppliedUpdates != movesDone.Load() {
		t.Fatalf("flush barrier incomplete: applied %d of %d", st.AppliedUpdates, movesDone.Load())
	}
	if st.AppliedBatches == 0 || st.AppliedBatches > st.AppliedUpdates {
		t.Fatalf("implausible batching: %d batches for %d updates", st.AppliedBatches, st.AppliedUpdates)
	}
	prm := Params{K: 10, Alpha: 0.3}
	for probe := 0; probe < 4; probe++ {
		q := queryable[rng.Intn(len(queryable))]
		want, err := e.Query(BruteForce, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range allNonCHAlgorithms {
			got, err := e.Query(algo, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			sameRanking(t, "post-stress "+algo.String(), got, want)
		}
	}
}

// TestFlushReadYourWrites: an async move followed by Flush must be visible
// to the next query and snapshot.
func TestFlushReadYourWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds := mkDataset(t, rng, 80, 0, false)
	e := mkEngine(t, ds, Options{})
	defer e.Close()
	target := spatial.Point{X: 0.123, Y: 0.456}
	if err := e.MoveUserAsync(42, target); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	g := e.Snapshot().Grid()
	if !g.Located(42) || g.Point(42) != target {
		t.Fatalf("flushed move invisible: located=%v point=%v", g.Located(42), g.Point(42))
	}
	if err := e.RemoveUserLocationAsync(42); err != nil {
		t.Fatal(err)
	}
	e.Flush()
	if e.Snapshot().Grid().Located(42) {
		t.Fatal("flushed removal invisible")
	}
}

// TestUpdaterCoalescing: many queued moves of one user collapse into few
// applied ops, and the last write wins.
func TestUpdaterCoalescing(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	ds := mkDataset(t, rng, 60, 0, false)
	e := mkEngine(t, ds, Options{UpdateMaxBatch: 64})
	defer e.Close()
	var last spatial.Point
	for i := 0; i < 500; i++ {
		last = spatial.Point{X: rng.Float64(), Y: rng.Float64()}
		if err := e.MoveUserAsync(7, last); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush()
	if got := e.Snapshot().Grid().Point(7); got != last {
		t.Fatalf("final position %v, want last write %v", got, last)
	}
	st := e.UpdateStats()
	if st.CoalescedUpdates == 0 {
		t.Fatalf("no coalescing across 500 same-user moves: %+v", st)
	}
	if st.PendingUpdates != 0 {
		t.Fatalf("pending %d after flush", st.PendingUpdates)
	}
}

// TestCoalesceUpdatesUnit pins the pure coalescing helper: last write per
// user wins, first-seen order is preserved, distinct users untouched.
func TestCoalesceUpdatesUnit(t *testing.T) {
	in := []Update{
		{ID: 1, To: spatial.Point{X: 1}},
		{ID: 2, To: spatial.Point{X: 2}},
		{ID: 1, Remove: true},
		{ID: 3, To: spatial.Point{X: 3}},
		{ID: 2, To: spatial.Point{X: 9}},
	}
	out := coalesceUpdates(in)
	if len(out) != 3 {
		t.Fatalf("len = %d, want 3", len(out))
	}
	if out[0].ID != 1 || !out[0].Remove {
		t.Fatalf("slot 0 = %+v, want user 1 removal", out[0])
	}
	if out[1].ID != 2 || out[1].To.X != 9 {
		t.Fatalf("slot 1 = %+v, want user 2 at x=9", out[1])
	}
	if out[2].ID != 3 || out[2].To.X != 3 {
		t.Fatalf("slot 2 = %+v", out[2])
	}
}

// TestUpdateValidation: NaN/±Inf coordinates and out-of-range users are
// rejected on every update path before touching the index.
func TestUpdateValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	ds := mkDataset(t, rng, 40, 0, false)
	e := mkEngine(t, ds, Options{})
	defer e.Close()
	old := e.Snapshot()
	bad := []spatial.Point{
		{X: math.NaN(), Y: 0},
		{X: 0, Y: math.NaN()},
		{X: math.Inf(1), Y: 0},
		{X: 0, Y: math.Inf(-1)},
	}
	for _, p := range bad {
		if err := e.MoveUser(3, p); err == nil {
			t.Fatalf("MoveUser accepted %v", p)
		}
		if err := e.MoveUserAsync(3, p); err == nil {
			t.Fatalf("MoveUserAsync accepted %v", p)
		}
		if err := e.ApplyUpdates([]Update{{ID: 3, To: p}}); err == nil {
			t.Fatalf("ApplyUpdates accepted %v", p)
		}
	}
	if err := e.MoveUser(-1, spatial.Point{}); err == nil {
		t.Fatal("negative user accepted")
	}
	if err := e.MoveUser(40, spatial.Point{}); err == nil {
		t.Fatal("out-of-range user accepted")
	}
	if err := e.RemoveUserLocation(99); err == nil {
		t.Fatal("out-of-range removal accepted")
	}
	e.Flush()
	if e.Snapshot() != old {
		t.Fatal("rejected updates still published an epoch")
	}
	// A rejected batch applies nothing, even with valid entries first.
	if err := e.ApplyUpdates([]Update{
		{ID: 1, To: spatial.Point{X: 0.5, Y: 0.5}},
		{ID: 2, To: spatial.Point{X: math.NaN()}},
	}); err == nil {
		t.Fatal("mixed batch accepted")
	}
	if e.Snapshot() != old {
		t.Fatal("failed batch published a prefix")
	}
}

// TestEngineCloseIdempotent: Close is safe to call twice and async updates
// after Close fail cleanly.
func TestEngineCloseIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	ds := mkDataset(t, rng, 30, 0, false)
	e := mkEngine(t, ds, Options{})
	if err := e.MoveUserAsync(3, spatial.Point{X: 0.1, Y: 0.1}); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if err := e.MoveUserAsync(4, spatial.Point{X: 0.2, Y: 0.2}); err == nil {
		t.Fatal("enqueue after Close accepted")
	}
	// Queries still work after Close.
	if _, err := e.Query(AIS, locatedUsers(ds)[0], Params{K: 3, Alpha: 0.5}); err != nil {
		t.Fatal(err)
	}
}

// TestFlushCloseRace: Flush racing Close must never hang — either the
// barrier completes or the shutdown releases the waiter; enqueues racing
// the shutdown fail cleanly instead of blocking on a dead queue.
func TestFlushCloseRace(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 20; trial++ {
		ds := mkDataset(t, rng, 30, 0, false)
		e := mkEngine(t, ds, Options{UpdateQueueCap: 2, UpdateMaxBatch: 4})
		var wg sync.WaitGroup
		for g := 0; g < 3; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := 0; i < 50; i++ {
					if err := e.MoveUserAsync(int32((g*7+i)%30), spatial.Point{X: 0.5, Y: 0.5}); err != nil {
						return // closed mid-stream: expected
					}
					if i%10 == 0 {
						e.Flush()
					}
				}
			}(g)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Close()
		}()
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("trial %d: Flush/Close race deadlocked", trial)
		}
		e.Flush() // post-Close flush is a no-op, must not hang
	}
}
