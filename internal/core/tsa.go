package core

import (
	"math"

	"ssrq/internal/aggindex"
	"ssrq/internal/ch"
	"ssrq/internal/graph"
	"ssrq/internal/pqueue"
	"ssrq/internal/spatial"
)

// tsaConfig selects the TSA flavor (§4.2).
type tsaConfig struct {
	quickCombine bool // probe streams by weighted distance-growth rate
	prune        bool // landmark candidate pruning before phase 2
	useCH        bool // phase 2 evaluates candidates via CH point-to-point
}

// candidateSet is TSA's Q: users encountered by the spatial search but not
// yet socially evaluated, ordered by Euclidean distance with lazy deletion.
type candidateSet struct {
	d    map[int32]float64
	heap pqueue.Heap[int32]
}

func newCandidateSet() *candidateSet {
	return &candidateSet{d: make(map[int32]float64)}
}

func (c *candidateSet) Add(u int32, d float64) {
	if _, ok := c.d[u]; ok {
		return
	}
	c.d[u] = d
	c.heap.Push(d, int64(u), u)
}

func (c *candidateSet) Contains(u int32) bool { _, ok := c.d[u]; return ok }
func (c *candidateSet) D(u int32) float64     { return c.d[u] }
func (c *candidateSet) Remove(u int32)        { delete(c.d, u) }
func (c *candidateSet) Len() int              { return len(c.d) }

// MinD returns the smallest Euclidean distance among live candidates
// (the t′_d of Algorithm 1), +Inf when empty.
func (c *candidateSet) MinD() float64 {
	for c.heap.Len() > 0 {
		e := c.heap.Peek()
		if _, live := c.d[e.Value]; live {
			return e.Key
		}
		c.heap.Pop() // stale: removed earlier
	}
	return math.Inf(1)
}

// PopMinD removes and returns the live candidate with the smallest distance.
func (c *candidateSet) PopMinD() (u int32, d float64, ok bool) {
	for c.heap.Len() > 0 {
		e, _ := c.heap.Pop()
		if _, live := c.d[e.Value]; live {
			delete(c.d, e.Value)
			return e.Value, e.Key, true
		}
	}
	return 0, 0, false
}

// Prune removes candidates for which drop returns true.
func (c *candidateSet) Prune(drop func(u int32, d float64) bool) {
	for u, d := range c.d {
		if drop(u, d) {
			delete(c.d, u)
		}
	}
}

// runTSA is the Twofold Search Approach (Algorithm 1): a social and a
// spatial incremental search run concurrently, bounding unseen users by
// θ = α·t_p + (1−α)·t_d. Phase 2 resolves the partially-evaluated candidate
// set Q, by default continuing only the social search (continuing the NN
// search "would be a waste of computations").
func (e *Engine) runTSA(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound float64, prm Params, st *Stats, cfg tsaConfig) []Entry {
	g := sn.Grid()
	soc := graph.NewDijkstraIterator(sn.SocialGraph(), q)
	nn := g.NewNN(qpt)
	r := newTopKBound(prm.K, bound)
	cand := newCandidateSet()

	tp, td := 0.0, 0.0
	socDone, spaDone := false, false

	advanceSocial := func() {
		v, p, ok := soc.Next()
		if !ok {
			socDone = true
			return
		}
		st.SocialPops++
		tp = p
		if v == q {
			return
		}
		d := spatialDist(g, qpt, v)
		r.Consider(Entry{ID: v, F: combine(prm.Alpha, p, d), P: p, D: d})
		// Algorithm 1 lines 7–8: a candidate reached by the social search is
		// now fully evaluated and must leave Q.
		cand.Remove(v)
	}
	advanceSpatial := func() {
		u, d, ok := nn.Next()
		if !ok {
			spaDone = true
			return
		}
		st.SpatialPops++
		td = d
		if u == q || soc.Settled(u) {
			return
		}
		cand.Add(u, d)
	}

	// theta bounds the f value of users unseen by both searches. A finished
	// stream contributes +Inf: no further qualifying user can exist there.
	theta := func() float64 {
		ctp, ctd := tp, td
		if socDone {
			ctp = math.Inf(1)
		}
		if spaDone {
			ctd = math.Inf(1)
		}
		return combine(prm.Alpha, ctp, ctd)
	}

	// Quick Combine: exponentially-smoothed per-pull growth of each
	// stream's frontier distance, weighted by the domain coefficient; the
	// faster-growing stream is probed because it lifts θ sooner.
	var socRate, spaRate float64
	var socPulls, spaPulls int
	const smooth = 0.5

	for !(socDone && spaDone) {
		if cfg.quickCombine {
			// Bootstrap: probe each stream twice before trusting the rates.
			pickSocial := !socDone &&
				(spaDone || socPulls < 2 ||
					(spaPulls >= 2 && prm.Alpha*socRate >= (1-prm.Alpha)*spaRate))
			if pickSocial {
				socPulls++
				before := tp
				advanceSocial()
				socRate = smooth*socRate + (1-smooth)*(tp-before)
			} else {
				spaPulls++
				before := td
				advanceSpatial()
				spaRate = smooth*spaRate + (1-smooth)*(td-before)
			}
		} else {
			advanceSocial()
			advanceSpatial()
		}
		if theta() >= r.Fk() {
			break
		}
	}

	if cfg.prune {
		// TSA with landmarks: eliminate candidates whose landmark-derived f
		// lower bound already misses the interim result. The bound comes
		// from the query's snapshot, so it is admissible on exactly the
		// graph this query is searching.
		lm := sn.Landmarks()
		cand.Prune(func(u int32, d float64) bool {
			return combine(prm.Alpha, lm.LowerBound(q, u), d) >= r.Fk()
		})
	}

	if cfg.useCH {
		e.tsaPhase2CH(sn.Hierarchy(), q, prm, st, r, cand, tp)
	} else {
		e.tsaPhase2Social(q, prm, st, r, cand, soc, tp, socDone)
	}
	return r.Sorted()
}

// tsaPhase2Social continues only the social search until every candidate is
// evaluated, disqualified, or provably beaten (θ′ ≥ f_k).
func (e *Engine) tsaPhase2Social(q graph.VertexID, prm Params, st *Stats, r *topK,
	cand *candidateSet, soc *graph.DijkstraIterator, tp float64, socDone bool) {
	for cand.Len() > 0 && !socDone {
		if combine(prm.Alpha, tp, cand.MinD()) >= r.Fk() {
			return
		}
		v, p, ok := soc.Next()
		if !ok {
			// Remaining candidates are socially unreachable: f = +Inf.
			return
		}
		st.SocialPops++
		tp = p
		if cand.Contains(v) {
			d := cand.D(v)
			r.Consider(Entry{ID: v, F: combine(prm.Alpha, p, d), P: p, D: d})
			cand.Remove(v)
		}
	}
}

// tsaPhase2CH is the TSA-CH phase 2 (Fig. 8): candidates are resolved
// cheapest-Euclidean-first with independent CH point-to-point queries, no
// social stream continuation. t_p stays frozen at its phase-1 value, so θ′
// grows only through t′_d.
func (e *Engine) tsaPhase2CH(hier *ch.CH, q graph.VertexID, prm Params, st *Stats, r *topK,
	cand *candidateSet, tp float64) {
	for {
		u, d, ok := cand.PopMinD()
		if !ok {
			return
		}
		if combine(prm.Alpha, tp, d) >= r.Fk() {
			return
		}
		st.CHQueries++
		p, _ := hier.Dist(q, u)
		r.Consider(Entry{ID: u, F: combine(prm.Alpha, p, d), P: p, D: d})
	}
}
