package core

import (
	"math"

	"ssrq/internal/aggindex"
	"ssrq/internal/ch"
	"ssrq/internal/fof"
	"ssrq/internal/graph"
	"ssrq/internal/pqueue"
	"ssrq/internal/spatial"
)

// tsaConfig selects the TSA flavor (§4.2).
type tsaConfig struct {
	quickCombine bool // probe streams by weighted distance-growth rate
	prune        bool // landmark candidate pruning before phase 2
	useCH        bool // phase 2 evaluates candidates via CH point-to-point
}

// candidateSet is TSA's Q: users encountered by the spatial search but not
// yet socially evaluated, ordered by Euclidean distance with lazy deletion.
type candidateSet struct {
	d    map[int32]float64
	heap pqueue.Heap[int32]
}

func newCandidateSet() *candidateSet {
	return &candidateSet{d: make(map[int32]float64)}
}

// reset empties the set in place, keeping the map's buckets and the heap's
// storage for reuse by the next query.
func (c *candidateSet) reset() {
	if c.d == nil {
		c.d = make(map[int32]float64)
	} else {
		clear(c.d)
	}
	c.heap.Reset()
}

func (c *candidateSet) Add(u int32, d float64) {
	if _, ok := c.d[u]; ok {
		return
	}
	c.d[u] = d
	c.heap.Push(d, int64(u), u)
}

func (c *candidateSet) Contains(u int32) bool { _, ok := c.d[u]; return ok }
func (c *candidateSet) D(u int32) float64     { return c.d[u] }
func (c *candidateSet) Remove(u int32)        { delete(c.d, u) }
func (c *candidateSet) Len() int              { return len(c.d) }

// MinD returns the smallest Euclidean distance among live candidates
// (the t′_d of Algorithm 1), +Inf when empty.
func (c *candidateSet) MinD() float64 {
	for c.heap.Len() > 0 {
		e := c.heap.Peek()
		if _, live := c.d[e.Value]; live {
			return e.Key
		}
		c.heap.Pop() // stale: removed earlier
	}
	return math.Inf(1)
}

// PopMinD removes and returns the live candidate with the smallest distance.
func (c *candidateSet) PopMinD() (u int32, d float64, ok bool) {
	for c.heap.Len() > 0 {
		e, _ := c.heap.Pop()
		if _, live := c.d[e.Value]; live {
			delete(c.d, e.Value)
			return e.Value, e.Key, true
		}
	}
	return 0, 0, false
}

// Prune removes candidates for which drop returns true.
func (c *candidateSet) Prune(drop func(u int32, d float64) bool) {
	for u, d := range c.d {
		if drop(u, d) {
			delete(c.d, u)
		}
	}
}

// tsaRun is the mutable state of one TSA phase-1 execution. It exists so the
// stream-advance steps can be methods rather than closures: closures
// capturing the frontier state (t_p, t_d, the done flags) would force a heap
// allocation per query, while a local struct with methods stays on the
// caller's stack.
type tsaRun struct {
	g      *spatial.Snapshot
	qpt    spatial.Point
	q      graph.VertexID
	alpha  float64
	filter uint64
	labels []uint64
	soc    *graph.DijkstraIterator
	nn     *spatial.NNIterator
	r      *topK
	cand   *candidateSet
	st     *Stats

	tp, td           float64
	socDone, spaDone bool
}

// excluded reports whether the query filter rejects user u. Excluded users
// still advance both frontiers (t_p/t_d bound *unseen* users regardless of
// labels) but never enter the interim result or the candidate set.
func (t *tsaRun) excluded(u int32) bool {
	if t.filter == 0 {
		return false
	}
	var lbl uint64
	if t.labels != nil {
		lbl = t.labels[u]
	}
	if lbl&t.filter == 0 {
		t.st.LabelSkips++
		return true
	}
	return false
}

func (t *tsaRun) advanceSocial() {
	v, p, ok := t.soc.Next()
	if !ok {
		t.socDone = true
		return
	}
	t.st.SocialPops++
	t.tp = p
	if v == t.q {
		return
	}
	// Algorithm 1 lines 7–8: a candidate reached by the social search is
	// now fully evaluated and must leave Q (filtered users never entered
	// it, and must not enter the result either).
	if t.excluded(v) {
		return
	}
	d := spatialDist(t.g, t.qpt, v)
	t.r.Consider(Entry{ID: v, F: combine(t.alpha, p, d), P: p, D: d})
	t.cand.Remove(v)
}

func (t *tsaRun) advanceSpatial() {
	u, d, ok := t.nn.Next()
	if !ok {
		t.spaDone = true
		return
	}
	t.st.SpatialPops++
	t.td = d
	if u == t.q || t.soc.Settled(u) {
		return
	}
	if t.excluded(u) {
		return
	}
	t.cand.Add(u, d)
}

// theta bounds the f value of users unseen by both searches. A finished
// stream contributes +Inf: no further qualifying user can exist there.
func (t *tsaRun) theta() float64 {
	ctp, ctd := t.tp, t.td
	if t.socDone {
		ctp = math.Inf(1)
	}
	if t.spaDone {
		ctd = math.Inf(1)
	}
	return combine(t.alpha, ctp, ctd)
}

// runTSA is the Twofold Search Approach (Algorithm 1): a social and a
// spatial incremental search run concurrently, bounding unseen users by
// θ = α·t_p + (1−α)·t_d. Phase 2 resolves the partially-evaluated candidate
// set Q, by default continuing only the social search (continuing the NN
// search "would be a waste of computations").
func (e *Engine) runTSA(sn *aggindex.Snapshot, q graph.VertexID, qpt spatial.Point, bound *SharedBound, prm Params, st *Stats, p *queryPools, cfg tsaConfig) []Entry {
	g := sn.Grid()
	p.soc.Reset(sn.SocialGraph(), q)
	p.nn.Reset(g, qpt)
	p.cand.reset()
	r := p.top.reset(prm.K, bound)
	t := tsaRun{
		g: g, qpt: qpt, q: q, alpha: prm.Alpha,
		filter: prm.Filter, labels: e.ds.Labels,
		soc: &p.soc, nn: p.nn, r: r, cand: &p.cand, st: st,
	}

	// Quick Combine: exponentially-smoothed per-pull growth of each
	// stream's frontier distance, weighted by the domain coefficient; the
	// faster-growing stream is probed because it lifts θ sooner.
	var socRate, spaRate float64
	var socPulls, spaPulls int
	const smooth = 0.5

	for !(t.socDone && t.spaDone) {
		if cfg.quickCombine {
			// Bootstrap: probe each stream twice before trusting the rates.
			pickSocial := !t.socDone &&
				(t.spaDone || socPulls < 2 ||
					(spaPulls >= 2 && prm.Alpha*socRate >= (1-prm.Alpha)*spaRate))
			if pickSocial {
				socPulls++
				before := t.tp
				t.advanceSocial()
				socRate = smooth*socRate + (1-smooth)*(t.tp-before)
			} else {
				spaPulls++
				before := t.td
				t.advanceSpatial()
				spaRate = smooth*spaRate + (1-smooth)*(t.td-before)
			}
		} else {
			t.advanceSocial()
			t.advanceSpatial()
		}
		if t.theta() >= r.Fk() {
			break
		}
	}

	if cfg.prune {
		// TSA with landmarks: eliminate candidates whose landmark-derived f
		// lower bound already misses the interim result. The bound comes
		// from the query's snapshot, so it is admissible on exactly the
		// graph this query is searching. A flat loop over the map rather
		// than candidateSet.Prune: the predicate closure would capture four
		// variables and allocate.
		lm := sn.Landmarks()
		useFoF := e.fof != nil && t.cand.Len() > 0
		if useFoF {
			p.fof.Arm(e.fof, sn.SocialGraph(), q, fof.DefaultBudget)
		}
		for u, d := range t.cand.d {
			lb := lm.LowerBound(q, u)
			if useFoF {
				if f := p.fof.LowerBound(u); f > lb {
					lb = f
					st.FoFTightened++
				}
			}
			if combine(prm.Alpha, lb, d) >= r.Fk() {
				delete(t.cand.d, u)
			}
		}
	}

	if cfg.useCH {
		e.tsaPhase2CH(sn.Hierarchy(), q, prm, st, r, t.cand, t.tp)
	} else {
		e.tsaPhase2Social(q, prm, st, r, t.cand, t.soc, t.tp, t.socDone)
	}
	return r.Sorted()
}

// tsaPhase2Social continues only the social search until every candidate is
// evaluated, disqualified, or provably beaten (θ′ ≥ f_k).
func (e *Engine) tsaPhase2Social(q graph.VertexID, prm Params, st *Stats, r *topK,
	cand *candidateSet, soc *graph.DijkstraIterator, tp float64, socDone bool) {
	for cand.Len() > 0 && !socDone {
		if combine(prm.Alpha, tp, cand.MinD()) >= r.Fk() {
			return
		}
		v, p, ok := soc.Next()
		if !ok {
			// Remaining candidates are socially unreachable: f = +Inf.
			return
		}
		st.SocialPops++
		tp = p
		if cand.Contains(v) {
			d := cand.D(v)
			r.Consider(Entry{ID: v, F: combine(prm.Alpha, p, d), P: p, D: d})
			cand.Remove(v)
		}
	}
}

// tsaPhase2CH is the TSA-CH phase 2 (Fig. 8): candidates are resolved
// cheapest-Euclidean-first with independent CH point-to-point queries, no
// social stream continuation. t_p stays frozen at its phase-1 value, so θ′
// grows only through t′_d.
func (e *Engine) tsaPhase2CH(hier *ch.CH, q graph.VertexID, prm Params, st *Stats, r *topK,
	cand *candidateSet, tp float64) {
	for {
		u, d, ok := cand.PopMinD()
		if !ok {
			return
		}
		if combine(prm.Alpha, tp, d) >= r.Fk() {
			return
		}
		st.CHQueries++
		p, _ := hier.Dist(q, u)
		r.Consider(Entry{ID: u, F: combine(prm.Alpha, p, d), P: p, D: d})
	}
}
