package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// validTopK checks a result is a well-formed top-k set regardless of which
// snapshot of the moving world it was computed against: at most k entries,
// sorted, duplicate-free, query excluded, every f finite and consistent
// with its social/spatial decomposition. It returns an error rather than
// failing the test so it can run on worker goroutines.
func validTopK(res *Result, q graph.VertexID, k int, alpha float64) error {
	if len(res.Entries) > k {
		return fmt.Errorf("%d entries for k=%d", len(res.Entries), k)
	}
	seen := make(map[int32]bool, len(res.Entries))
	for i, e := range res.Entries {
		if e.ID == int32(q) {
			return fmt.Errorf("rank %d: query user in its own result", i)
		}
		if seen[e.ID] {
			return fmt.Errorf("rank %d: duplicate id %d", i, e.ID)
		}
		seen[e.ID] = true
		if math.IsInf(e.F, 0) || math.IsNaN(e.F) {
			return fmt.Errorf("rank %d: non-finite f %v", i, e.F)
		}
		if math.Abs(combine(alpha, e.P, e.D)-e.F) > 1e-9 {
			return fmt.Errorf("rank %d: f %v inconsistent with α·p+(1-α)·d", i, e.F)
		}
		if i > 0 && entryLess(e, res.Entries[i-1]) {
			return fmt.Errorf("rank %d: entries unsorted", i)
		}
	}
	return nil
}

// TestConcurrentQueryMoveStress hammers Query with every main algorithm
// while other goroutines relocate and unlocate users. Run under -race this
// is the synchronization proof; the assertions check every result is a
// valid top-k set mid-flight, and that after the dust settles the index
// still agrees exactly with brute force (i.e. concurrent maintenance never
// corrupted the summaries).
func TestConcurrentQueryMoveStress(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	const n = 200
	ds := mkDataset(t, rng, n, 0, false) // everyone located
	e := mkEngine(t, ds, Options{GridS: 5, GridLevels: 2, CacheT: 20})

	// Movers touch only the upper half of the ID space; queriers query only
	// the lower half, so a query user never loses its location mid-test.
	var movable []graph.VertexID
	var queryable []graph.VertexID
	for _, u := range locatedUsers(ds) {
		if int(u) >= n/2 {
			movable = append(movable, u)
		} else {
			queryable = append(queryable, u)
		}
	}
	if len(movable) == 0 || len(queryable) == 0 {
		t.Fatal("bad partition")
	}

	const (
		numQueriers   = 4
		numMovers     = 2
		queriesPerGor = 30
		movesPerGor   = 150
	)
	algos := []Algorithm{AIS, TSA, SFA, SPA, TSAQC, AISMinus, AISCache}
	var wg sync.WaitGroup
	var queriesDone, movesDone atomic.Int64
	errCh := make(chan error, numQueriers)

	for g := 0; g < numMovers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mrng := rand.New(rand.NewSource(int64(100 + g)))
			for i := 0; i < movesPerGor; i++ {
				u := movable[mrng.Intn(len(movable))]
				switch mrng.Intn(4) {
				case 0:
					e.RemoveUserLocation(int32(u)) //errok random churn over valid users; cannot fail
				default:
					e.MoveUser(int32(u), spatial.Point{X: mrng.Float64(), Y: mrng.Float64()}) //errok finite in-range coords; cannot fail
				}
				movesDone.Add(1)
			}
		}(g)
	}
	for g := 0; g < numQueriers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qrng := rand.New(rand.NewSource(int64(200 + g)))
			for i := 0; i < queriesPerGor; i++ {
				q := queryable[qrng.Intn(len(queryable))]
				algo := algos[(g+i)%len(algos)]
				k := 1 + qrng.Intn(10)
				alpha := 0.1 + 0.8*qrng.Float64()
				res, err := e.Query(algo, q, Params{K: k, Alpha: alpha})
				if err == nil {
					err = validTopK(res, q, k, alpha)
				}
				if err != nil {
					errCh <- fmt.Errorf("%v on user %d: %w", algo, q, err)
					return
				}
				queriesDone.Add(1)
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if queriesDone.Load() == 0 || movesDone.Load() == 0 {
		t.Fatalf("no overlap: %d queries, %d moves", queriesDone.Load(), movesDone.Load())
	}

	// Post-stress integrity: with the world quiescent again, every algorithm
	// must agree exactly with brute force on the mutated index.
	prm := Params{K: 10, Alpha: 0.3}
	for probe := 0; probe < 4; probe++ {
		q := queryable[rng.Intn(len(queryable))]
		want, err := e.Query(BruteForce, q, prm)
		if err != nil {
			t.Fatal(err)
		}
		for _, algo := range allNonCHAlgorithms {
			got, err := e.Query(algo, q, prm)
			if err != nil {
				t.Fatal(err)
			}
			sameRanking(t, "post-stress "+algo.String(), got, want)
		}
	}
}

// TestConcurrentBatchesAndMoves runs QueryBatch from several goroutines
// while movers mutate locations — the serving pattern of the HTTP layer.
func TestConcurrentBatchesAndMoves(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	const n = 150
	ds := mkDataset(t, rng, n, 0, false)
	e := mkEngine(t, ds, Options{})
	users := locatedUsers(ds)
	prm := Params{K: 5, Alpha: 0.4}

	batch := make([]BatchQuery, 24)
	for i := range batch {
		batch[i] = BatchQuery{Algo: AIS, Q: users[i%(len(users)/2)], Params: prm}
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mrng := rand.New(rand.NewSource(61))
		for {
			select {
			case <-stop:
				return
			default:
				u := users[len(users)/2+mrng.Intn(len(users)/2)]
				e.MoveUser(int32(u), spatial.Point{X: mrng.Float64(), Y: mrng.Float64()}) //errok finite in-range coords; cannot fail
			}
		}
	}()
	for round := 0; round < 6; round++ {
		outs := e.QueryBatch(batch, 3)
		for i, out := range outs {
			if out.Err != nil {
				t.Fatalf("slot %d: %v", i, out.Err)
			}
			if err := validTopK(out.Result, batch[i].Q, prm.K, prm.Alpha); err != nil {
				t.Fatalf("slot %d: %v", i, err)
			}
		}
	}
	close(stop)
	wg.Wait()
}
