package spatial

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMinDistQuickProperty(t *testing.T) {
	// MinDist(p, r) must lower-bound the distance from p to any point
	// inside r (sampled).
	squash := func(x float64) float64 { // map arbitrary floats into [-100, 100]
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0
		}
		return math.Mod(x, 100)
	}
	check := func(px, py, ax, ay, bx, by, sx, sy float64) bool {
		px, py = squash(px), squash(py)
		ax, ay, bx, by = squash(ax), squash(ay), squash(bx), squash(by)
		r := Rect{math.Min(ax, bx), math.Min(ay, by), math.Max(ax, bx), math.Max(ay, by)}
		p := Point{px, py}
		// Sample point inside r via fractional coordinates.
		fx, fy := math.Abs(math.Mod(sx, 1)), math.Abs(math.Mod(sy, 1))
		in := Point{r.MinX + fx*(r.MaxX-r.MinX), r.MinY + fy*(r.MaxY-r.MinY)}
		return r.MinDist(p) <= p.Dist(in)+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxDistUpperBoundsMembers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		r := Rect{rng.Float64() * 10, rng.Float64() * 10, 0, 0}
		r.MaxX = r.MinX + rng.Float64()*10
		r.MaxY = r.MinY + rng.Float64()*10
		p := Point{rng.Float64()*30 - 10, rng.Float64()*30 - 10}
		in := Point{r.MinX + rng.Float64()*r.Width(), r.MinY + rng.Float64()*r.Height()}
		if p.Dist(in) > r.MaxDist(p)+1e-9 {
			t.Fatalf("MaxDist violated: %v > %v", p.Dist(in), r.MaxDist(p))
		}
	}
}

func TestNNDeterministicAcrossRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, _, _ := mkGrid(t, rng, 300, 5, 2, 0.1)
	q := Point{33, 66}
	var first []int32
	for run := 0; run < 3; run++ {
		it := g.NewNN(q)
		var order []int32
		for {
			id, _, ok := it.Next()
			if !ok {
				break
			}
			order = append(order, id)
		}
		if first == nil {
			first = order
			continue
		}
		if len(order) != len(first) {
			t.Fatal("length varies")
		}
		for i := range order {
			if order[i] != first[i] {
				t.Fatalf("order differs at %d", i)
			}
		}
	}
}

func TestNNAllSamePoint(t *testing.T) {
	// Heavy ties: every user at the same spot must stream in ID order.
	pts := make([]Point, 50)
	located := make([]bool, 50)
	for i := range pts {
		pts[i] = Point{1, 1}
		located[i] = true
	}
	l, _ := NewLayout(Rect{0, 0, 2, 2}, 4, 2)
	g, err := NewGrid(l, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	it := g.NewNN(Point{1, 1})
	for want := int32(0); want < 50; want++ {
		id, d, ok := it.Next()
		if !ok || id != want || d != 0 {
			t.Fatalf("got (%d,%v,%v), want (%d,0,true)", id, d, ok, want)
		}
	}
}

func TestGridSingleLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, pts, located := mkGrid(t, rng, 120, 8, 1, 0.2)
	q := Point{10, 90}
	it := g.NewNN(q)
	prev := -1.0
	count := 0
	for {
		id, d, ok := it.Next()
		if !ok {
			break
		}
		if d < prev {
			t.Fatal("order violated on single-level grid")
		}
		if !located[id] {
			t.Fatal("unlocated user streamed")
		}
		if math.Abs(d-pts[id].Dist(q)) > 1e-12 {
			t.Fatal("distance wrong")
		}
		prev = d
		count++
	}
	if count != g.NumLocated() {
		t.Fatalf("streamed %d of %d", count, g.NumLocated())
	}
}
