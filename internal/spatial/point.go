// Package spatial implements the Euclidean substrate of the SSRQ
// reproduction: points, rectangles, and a dynamic multi-level regular grid
// with a branch-and-bound incremental nearest-neighbor iterator — the
// main-memory combination the paper adopts for SPA/TSA ([35], §4.1) and the
// spatial skeleton of the AIS aggregate index (§5.1).
package spatial

import "math"

// Point is a location in 2-D Euclidean space.
type Point struct {
	X, Y float64
}

// IsFinite reports whether both coordinates are ordinary finite numbers.
// NaN or ±Inf coordinates would silently corrupt grid membership (CellIndex
// comparisons all fail, clamping the user into cell 0), so update paths
// reject non-finite points before they reach the index.
func (p Point) IsFinite() bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

// Dist returns the Euclidean distance to q.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance to q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Rect is an axis-aligned rectangle, closed on all sides.
type Rect struct {
	MinX, MinY, MaxX, MaxY float64
}

// Contains reports whether p lies in r (boundary inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.MinX && p.X <= r.MaxX && p.Y >= r.MinY && p.Y <= r.MaxY
}

// MinDist returns the minimum Euclidean distance between p and any point of
// r — the paper's dˇ(u_q, C) spatial lower bound: 0 when p is inside r,
// otherwise the distance to the nearest boundary point.
func (r Rect) MinDist(p Point) float64 {
	dx := math.Max(math.Max(r.MinX-p.X, 0), p.X-r.MaxX)
	dy := math.Max(math.Max(r.MinY-p.Y, 0), p.Y-r.MaxY)
	return math.Sqrt(dx*dx + dy*dy)
}

// MaxDist returns the maximum Euclidean distance between p and any point of
// r (the farthest corner).
func (r Rect) MaxDist(p Point) float64 {
	dx := math.Max(math.Abs(p.X-r.MinX), math.Abs(p.X-r.MaxX))
	dy := math.Max(math.Abs(p.Y-r.MinY), math.Abs(p.Y-r.MaxY))
	return math.Sqrt(dx*dx + dy*dy)
}

// Diagonal returns the length of r's diagonal — the spatial-proximity
// normalization constant (max pairwise Euclidean distance bound).
func (r Rect) Diagonal() float64 {
	dx, dy := r.MaxX-r.MinX, r.MaxY-r.MinY
	return math.Sqrt(dx*dx + dy*dy)
}

// Width and Height of the rectangle.
func (r Rect) Width() float64  { return r.MaxX - r.MinX }
func (r Rect) Height() float64 { return r.MaxY - r.MinY }

// BoundingRect returns the tightest rectangle covering all points; ok is
// false when pts is empty or no point is marked located.
func BoundingRect(pts []Point, located []bool) (Rect, bool) {
	first := true
	var r Rect
	for i, p := range pts {
		if located != nil && !located[i] {
			continue
		}
		if first {
			r = Rect{p.X, p.Y, p.X, p.Y}
			first = false
			continue
		}
		r.MinX = math.Min(r.MinX, p.X)
		r.MinY = math.Min(r.MinY, p.Y)
		r.MaxX = math.Max(r.MaxX, p.X)
		r.MaxY = math.Max(r.MaxY, p.Y)
	}
	return r, !first
}
