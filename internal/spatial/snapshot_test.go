package spatial

import (
	"math"
	"math/rand"
	"testing"
)

// snapshotWorld captures everything a reader can observe through a snapshot,
// for comparing epochs.
type snapshotWorld struct {
	numLocated int
	pts        map[int32]Point
	located    map[int32]bool
	leafOf     map[int32]int32
	members    map[int32][]int32
	counts     [][]int32
}

func captureWorld(s *Snapshot) snapshotWorld {
	w := snapshotWorld{
		numLocated: s.NumLocated(),
		pts:        map[int32]Point{},
		located:    map[int32]bool{},
		leafOf:     map[int32]int32{},
		members:    map[int32][]int32{},
	}
	for id := int32(0); id < int32(s.NumUsers()); id++ {
		w.pts[id] = s.Point(id)
		w.located[id] = s.Located(id)
		w.leafOf[id] = s.LeafOf(id)
	}
	layout := s.Layout()
	for idx := int32(0); idx < int32(layout.NumCells(layout.LeafLevel())); idx++ {
		w.members[idx] = append([]int32(nil), s.CellUsers(idx)...)
	}
	for l := 0; l < layout.Levels; l++ {
		row := make([]int32, layout.NumCells(l))
		for idx := range row {
			row[idx] = s.CountAt(l, int32(idx))
		}
		w.counts = append(w.counts, row)
	}
	return w
}

func worldsEqual(a, b snapshotWorld) bool {
	if a.numLocated != b.numLocated {
		return false
	}
	for id, p := range a.pts {
		if b.pts[id] != p || b.located[id] != a.located[id] || b.leafOf[id] != a.leafOf[id] {
			return false
		}
	}
	for idx, m := range a.members {
		bm := b.members[idx]
		if len(m) != len(bm) {
			return false
		}
		for i := range m {
			if m[i] != bm[i] {
				return false
			}
		}
	}
	for l := range a.counts {
		for idx := range a.counts[l] {
			if a.counts[l][idx] != b.counts[l][idx] {
				return false
			}
		}
	}
	return true
}

// TestSnapshotIsolation is the core copy-on-write contract: a snapshot
// captured before a batch of mutations is bit-for-bit unchanged after the
// mutations publish, while the new snapshot reflects them.
func TestSnapshotIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, _, _ := mkGrid(t, rng, 2500, 5, 2, 0.2) // >1 page of users
	old := g.Snapshot()
	before := captureWorld(old)

	for step := 0; step < 800; step++ {
		id := int32(rng.Intn(2500))
		switch rng.Intn(3) {
		case 0:
			g.Move(id, Point{rng.Float64() * 100, rng.Float64() * 100})
		case 1:
			g.RemoveLocation(id)
		case 2:
			g.SetLocated(id, Point{rng.Float64() * 100, rng.Float64() * 100})
		}
	}
	// Unpublished mutations must be invisible to snapshot readers.
	if g.Snapshot() != old {
		t.Fatal("snapshot pointer changed before Publish")
	}
	if !worldsEqual(before, captureWorld(g.Snapshot())) {
		t.Fatal("unpublished mutations leaked into the published snapshot")
	}

	cur := g.Publish()
	if cur == old {
		t.Fatal("Publish did not install a new snapshot")
	}
	if cur.Epoch() != old.Epoch()+1 {
		t.Fatalf("epoch %d after %d", cur.Epoch(), old.Epoch())
	}
	// The old epoch must be exactly what it was…
	if !worldsEqual(before, captureWorld(old)) {
		t.Fatal("published mutations mutated the old snapshot in place")
	}
	// …and the new epoch must agree with the writer's own view.
	after := captureWorld(cur)
	if after.numLocated != g.NumLocated() {
		t.Fatalf("new snapshot located %d, writer sees %d", after.numLocated, g.NumLocated())
	}
	if worldsEqual(before, after) {
		t.Fatal("800 mutations left the world unchanged (test is vacuous)")
	}
}

// TestSnapshotIsolationAcrossManyEpochs holds snapshots from several epochs
// simultaneously and checks each stays frozen while later epochs change.
func TestSnapshotIsolationAcrossManyEpochs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	g, _, _ := mkGrid(t, rng, 600, 4, 2, 0)
	type epoch struct {
		snap  *Snapshot
		world snapshotWorld
	}
	var epochs []epoch
	for e := 0; e < 8; e++ {
		for step := 0; step < 40; step++ {
			g.Move(int32(rng.Intn(600)), Point{rng.Float64() * 100, rng.Float64() * 100})
		}
		s := g.Publish()
		epochs = append(epochs, epoch{s, captureWorld(s)})
	}
	for i, e := range epochs {
		if !worldsEqual(e.world, captureWorld(e.snap)) {
			t.Fatalf("epoch %d changed after later publishes", i)
		}
	}
	// NN results over an old epoch must match its frozen world, not the
	// current one.
	first := epochs[0]
	q := Point{50, 50}
	it := first.snap.NewNN(q)
	for {
		id, d, ok := it.Next()
		if !ok {
			break
		}
		if got := first.world.pts[id].Dist(q); math.Abs(got-d) > 1e-12 {
			t.Fatalf("NN over old epoch used live coordinates for user %d", id)
		}
	}
}

// TestPublishNoopWhenClean verifies Publish without mutations keeps the same
// epoch (no spurious version churn).
func TestPublishNoopWhenClean(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g, _, _ := mkGrid(t, rng, 100, 4, 1, 0)
	s1 := g.Publish()
	s2 := g.Publish()
	if s1 != s2 {
		t.Fatal("clean Publish installed a new snapshot")
	}
	g.Move(3, Point{1, 1})
	if g.Publish() == s1 {
		t.Fatal("dirty Publish returned the old snapshot")
	}
}

// TestWriterViewReadYourWrites: the Grid's own accessors see unpublished
// mutations (single-threaded convenience), snapshots do not.
func TestWriterViewReadYourWrites(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	g, _, _ := mkGrid(t, rng, 50, 4, 1, 0)
	old := g.Snapshot()
	before := old.Point(7)
	target := Point{99, 99}
	g.Move(7, target)
	if g.Point(7) != target {
		t.Fatal("writer view missed its own move")
	}
	if g.Snapshot().Point(7) != before {
		t.Fatal("snapshot saw unpublished move")
	}
	g.Publish()
	if g.Snapshot().Point(7) != target {
		t.Fatal("published move invisible")
	}
}
