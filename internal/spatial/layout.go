package spatial

import "fmt"

// Layout is the pure geometry of a multi-level regular grid: L stored
// levels over a bounding rectangle, where level ℓ (0 = coarsest stored,
// L−1 = leaf) partitions each axis into s^(ℓ+1) equal cells. Each cell is
// therefore parent to s×s cells of the next level, matching the paper's
// index (§5.1, Fig. 3). Following the paper's setup we store the lowest
// Levels levels of the conceptual hierarchy and seed searches with every
// top-level cell (the grid "does not have to be a tree").
//
// Layout is shared by the plain spatial grid (SPA/TSA) and the AIS
// aggregate index so both use identical geometry.
type Layout struct {
	Bounds Rect
	S      int // partitioning granularity (cells per axis per level step)
	Levels int // number of stored levels
	dims   []int
}

// NewLayout validates and precomputes a layout.
func NewLayout(bounds Rect, s, levels int) (*Layout, error) {
	if s < 2 {
		return nil, fmt.Errorf("spatial: granularity s = %d must be ≥ 2", s)
	}
	if levels < 1 || levels > 4 {
		return nil, fmt.Errorf("spatial: levels = %d out of [1,4]", levels)
	}
	if !(bounds.MaxX > bounds.MinX) || !(bounds.MaxY > bounds.MinY) {
		return nil, fmt.Errorf("spatial: degenerate bounds %+v", bounds)
	}
	l := &Layout{Bounds: bounds, S: s, Levels: levels}
	dim := s
	for i := 0; i < levels; i++ {
		l.dims = append(l.dims, dim)
		dim *= s
	}
	return l, nil
}

// Dim returns the number of cells per axis at the given stored level.
func (l *Layout) Dim(level int) int { return l.dims[level] }

// NumCells returns the total number of cells at the given level.
func (l *Layout) NumCells(level int) int { return l.dims[level] * l.dims[level] }

// LeafLevel returns the index of the finest stored level.
func (l *Layout) LeafLevel() int { return l.Levels - 1 }

// CellIndex returns the flattened index of the cell containing p at the
// given level. Points outside the bounds clamp to the border cells so a
// moving user never falls off the grid.
func (l *Layout) CellIndex(level int, p Point) int32 {
	dim := l.dims[level]
	fx := (p.X - l.Bounds.MinX) / l.Bounds.Width() * float64(dim)
	fy := (p.Y - l.Bounds.MinY) / l.Bounds.Height() * float64(dim)
	ix, iy := int(fx), int(fy)
	if ix < 0 {
		ix = 0
	} else if ix >= dim {
		ix = dim - 1
	}
	if iy < 0 {
		iy = 0
	} else if iy >= dim {
		iy = dim - 1
	}
	return int32(iy*dim + ix)
}

// CellRect returns the spatial extent of cell idx at the given level.
func (l *Layout) CellRect(level int, idx int32) Rect {
	dim := l.dims[level]
	ix, iy := int(idx)%dim, int(idx)/dim
	w := l.Bounds.Width() / float64(dim)
	h := l.Bounds.Height() / float64(dim)
	return Rect{
		MinX: l.Bounds.MinX + float64(ix)*w,
		MinY: l.Bounds.MinY + float64(iy)*h,
		MaxX: l.Bounds.MinX + float64(ix+1)*w,
		MaxY: l.Bounds.MinY + float64(iy+1)*h,
	}
}

// ParentIndex maps a cell at level ≥ 1 to its parent at level−1.
func (l *Layout) ParentIndex(level int, idx int32) int32 {
	dim := l.dims[level]
	ix, iy := int(idx)%dim, int(idx)/dim
	pdim := l.dims[level-1]
	return int32((iy/l.S)*pdim + ix/l.S)
}

// ChildIndices appends the s×s child cell indices (at level+1) of cell idx
// to dst and returns it.
func (l *Layout) ChildIndices(level int, idx int32, dst []int32) []int32 {
	dim := l.dims[level]
	ix, iy := int(idx)%dim, int(idx)/dim
	cdim := l.dims[level+1]
	for dy := 0; dy < l.S; dy++ {
		row := (iy*l.S + dy) * cdim
		for dx := 0; dx < l.S; dx++ {
			dst = append(dst, int32(row+ix*l.S+dx))
		}
	}
	return dst
}
