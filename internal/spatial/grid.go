package spatial

import (
	"fmt"
	"sync/atomic"
)

// Grid is a dynamic multi-level regular grid over user locations. Leaf cells
// hold user IDs; every level keeps per-cell occupancy counts so searches can
// skip empty subtrees. Users without a known location (the paper treats them
// as infinitely far away) are simply absent from the grid.
//
// Concurrency follows an epoch/snapshot model rather than locking. The grid
// publishes its complete query-visible state as an immutable *Snapshot
// through an atomic pointer: readers call Snapshot() once and traverse the
// returned epoch freely — no lock, no blocking, one consistent view for the
// whole logical operation. Mutations (Move/SetLocated/RemoveLocation) build
// the next epoch copy-on-write: only the touched leaf buckets, per-user
// pages and count arrays are duplicated, everything else is shared with the
// published snapshot. Nothing a reader can observe changes until Publish
// atomically installs the new epoch.
//
// The mutating methods and Publish are writer-side and must be serialized
// externally (the aggregate index and the engine's update pipeline own a
// single writer); they never block readers. Single-threaded use needs no
// synchronization at all: the read accessors on Grid observe the working
// state directly, so mutate-then-read works without an intervening Publish.
type Grid struct {
	layout    *Layout
	published atomic.Pointer[Snapshot]

	// Writer state: the epoch under construction. work is nil when no
	// unpublished mutation exists. The stamp arrays record which constituent
	// objects have already been duplicated for the current working epoch —
	// an object is safe to mutate in place iff its stamp equals epoch.
	work        *Snapshot
	epoch       uint64
	pageStamp   []uint64 // per per-user page (pts+located+bucketOf together)
	bucketStamp []uint64 // per leaf cell bucket
	countStamp  []uint64 // per count level
}

// NewGrid indexes the users whose located flag is set. pts and located are
// copied into the grid's internal paged storage: the grid owns its state and
// later mutations do not write through to the caller's slices (callers read
// current positions from a Snapshot or the grid's accessors).
func NewGrid(layout *Layout, pts []Point, located []bool) (*Grid, error) {
	if len(pts) != len(located) {
		return nil, fmt.Errorf("spatial: %d points but %d located flags", len(pts), len(located))
	}
	n := len(pts)
	pages := numPages(n)
	w := &Snapshot{
		layout:   layout,
		n:        n,
		pts:      make([][]Point, pages),
		located:  make([][]bool, pages),
		bucketOf: make([][]int32, pages),
		leaves:   make([][]int32, layout.NumCells(layout.LeafLevel())),
	}
	for p := 0; p < pages; p++ {
		lo := p * pageSize
		hi := min(lo+pageSize, n)
		w.pts[p] = make([]Point, hi-lo)
		copy(w.pts[p], pts[lo:hi])
		w.located[p] = make([]bool, hi-lo)
		copy(w.located[p], located[lo:hi])
		b := make([]int32, hi-lo)
		for i := range b {
			b[i] = -1
		}
		w.bucketOf[p] = b
	}
	for l := 0; l < layout.Levels; l++ {
		w.counts = append(w.counts, make([]int32, layout.NumCells(l)))
	}
	g := &Grid{
		layout:      layout,
		work:        w,
		pageStamp:   make([]uint64, pages),
		bucketStamp: make([]uint64, len(w.leaves)),
		countStamp:  make([]uint64, layout.Levels),
	}
	// Construction runs at epoch 0 with all stamps already 0, so the
	// insert loop mutates the fresh arrays in place.
	for id := 0; id < n; id++ {
		if located[id] {
			g.insert(int32(id))
		}
	}
	g.Publish()
	return g, nil
}

// Snapshot returns the most recently published epoch. The returned value is
// immutable and safe for unlimited concurrent readers.
func (g *Grid) Snapshot() *Snapshot { return g.published.Load() }

// Publish atomically installs the working epoch as the new published
// snapshot and returns it. A no-op (returning the current snapshot) when
// nothing changed since the last publish. Writer-side.
func (g *Grid) Publish() *Snapshot {
	if g.work == nil {
		return g.published.Load()
	}
	s := g.work
	g.work = nil
	g.published.Store(s)
	return s
}

// view returns the state mutators and writer-side readers operate on: the
// working epoch when one exists, otherwise the published snapshot.
func (g *Grid) view() *Snapshot {
	if g.work != nil {
		return g.work
	}
	return g.published.Load()
}

// ensureWork opens the next working epoch if none exists, sharing every
// constituent array with the published snapshot (only the cheap spines are
// duplicated eagerly; pages, buckets and count levels copy on first touch).
func (g *Grid) ensureWork() *Snapshot {
	if g.work == nil {
		pub := g.published.Load()
		w := *pub
		w.epoch = pub.epoch + 1
		w.pts = append([][]Point(nil), pub.pts...)
		w.located = append([][]bool(nil), pub.located...)
		w.bucketOf = append([][]int32(nil), pub.bucketOf...)
		w.leaves = append([][]int32(nil), pub.leaves...)
		w.counts = append([][]int32(nil), pub.counts...)
		g.work = &w
		g.epoch = w.epoch
	}
	return g.work
}

// writablePage duplicates the per-user page holding id (points, located
// flags and leaf assignments travel together) on first touch per epoch.
func (g *Grid) writablePage(w *Snapshot, id int32) int32 {
	pg := id >> pageShift
	if g.pageStamp[pg] != g.epoch {
		w.pts[pg] = append([]Point(nil), w.pts[pg]...)
		w.located[pg] = append([]bool(nil), w.located[pg]...)
		w.bucketOf[pg] = append([]int32(nil), w.bucketOf[pg]...)
		g.pageStamp[pg] = g.epoch
	}
	return pg
}

// writableBucket duplicates a leaf bucket on first touch per epoch.
func (g *Grid) writableBucket(w *Snapshot, leaf int32) {
	if g.bucketStamp[leaf] != g.epoch {
		w.leaves[leaf] = append([]int32(nil), w.leaves[leaf]...)
		g.bucketStamp[leaf] = g.epoch
	}
}

// writableCounts duplicates one level's count array on first touch per epoch.
func (g *Grid) writableCounts(w *Snapshot, level int) []int32 {
	if g.countStamp[level] != g.epoch {
		w.counts[level] = append([]int32(nil), w.counts[level]...)
		g.countStamp[level] = g.epoch
	}
	return w.counts[level]
}

// Layout returns the grid geometry.
func (g *Grid) Layout() *Layout { return g.layout }

// NumLocated returns how many users currently have an indexed location.
// Writer-side view; readers use Snapshot().NumLocated.
func (g *Grid) NumLocated() int { return g.view().numLocated }

// Point returns the current location of a user (meaningless when not
// located). Writer-side view.
func (g *Grid) Point(id int32) Point { return g.view().Point(id) }

// Located reports whether the user has a known location. Writer-side view.
func (g *Grid) Located(id int32) bool { return g.view().Located(id) }

// CellUsers returns the members of a leaf cell (do not modify). Writer-side
// view.
func (g *Grid) CellUsers(leafIdx int32) []int32 { return g.view().leaves[leafIdx] }

// LeafOf returns the leaf cell currently holding the user, or -1 when the
// user has no location. Index layers that maintain per-cell aggregates (the
// AIS social summaries) use this to find the old bucket before a move.
func (g *Grid) LeafOf(id int32) int32 { return g.view().LeafOf(id) }

// CountAt returns the number of located users under a cell. Writer-side
// view.
func (g *Grid) CountAt(level int, idx int32) int32 { return g.view().counts[level][idx] }

func (g *Grid) insert(id int32) {
	w := g.work
	leaf := g.layout.CellIndex(g.layout.LeafLevel(), w.Point(id))
	g.writableBucket(w, leaf)
	w.leaves[leaf] = append(w.leaves[leaf], id)
	pg := g.writablePage(w, id)
	w.bucketOf[pg][id&pageMask] = leaf
	g.adjustCounts(leaf, +1)
	w.numLocated++
}

func (g *Grid) remove(id int32) {
	w := g.work
	leaf := w.LeafOf(id)
	g.writableBucket(w, leaf)
	bucket := w.leaves[leaf]
	for i, u := range bucket {
		if u == id {
			bucket[i] = bucket[len(bucket)-1]
			w.leaves[leaf] = bucket[:len(bucket)-1]
			break
		}
	}
	pg := g.writablePage(w, id)
	w.bucketOf[pg][id&pageMask] = -1
	g.adjustCounts(leaf, -1)
	w.numLocated--
}

// adjustCounts propagates an occupancy delta from a leaf up every level.
func (g *Grid) adjustCounts(leaf int32, delta int32) {
	idx := leaf
	for l := g.layout.LeafLevel(); ; l-- {
		g.writableCounts(g.work, l)[idx] += delta
		if l == 0 {
			break
		}
		idx = g.layout.ParentIndex(l, idx)
	}
}

// Move relocates a user. Updates are handled as the paper describes: a
// deletion from the old cell and an insertion into the new one. A move that
// stays within the same leaf cell rewrites only the user's coordinate page
// in the working epoch — membership, counts and any aggregate summaries
// stacked on top are untouched, and readers of the published snapshot see
// the old coordinates until the next Publish. Writer-side.
func (g *Grid) Move(id int32, to Point) {
	w := g.ensureWork()
	if !w.Located(id) {
		g.SetLocated(id, to)
		return
	}
	oldLeaf := w.LeafOf(id)
	newLeaf := g.layout.CellIndex(g.layout.LeafLevel(), to)
	pg := g.writablePage(w, id)
	w.pts[pg][id&pageMask] = to
	if oldLeaf == newLeaf {
		return
	}
	g.remove(id)
	g.insert(id)
}

// SetLocated gives a previously unlocated user a location. Writer-side.
func (g *Grid) SetLocated(id int32, p Point) {
	w := g.ensureWork()
	if w.Located(id) {
		g.Move(id, p)
		return
	}
	pg := g.writablePage(w, id)
	w.pts[pg][id&pageMask] = p
	w.located[pg][id&pageMask] = true
	g.insert(id)
}

// RemoveLocation drops a user's location (he/she becomes "infinitely far").
// Writer-side.
func (g *Grid) RemoveLocation(id int32) {
	w := g.ensureWork()
	if !w.Located(id) {
		return
	}
	g.remove(id)
	pg := g.writablePage(w, id)
	w.located[pg][id&pageMask] = false
}
