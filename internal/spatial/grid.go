package spatial

import (
	"fmt"
	"sync"
)

// Grid is a dynamic multi-level regular grid over user locations. Leaf cells
// hold user IDs; every level keeps per-cell occupancy counts so searches can
// skip empty subtrees. Users without a known location (the paper treats them
// as infinitely far away) are simply absent from the grid.
//
// Concurrency: the grid carries the read-write lock that guards all mutable
// spatial state — its own membership structures plus the pts/located slices
// it shares with the dataset and any aggregate layers stacked on top (the
// AIS social summaries). The lock is deliberately exposed (RLock/RUnlock/
// Lock/Unlock) rather than taken inside each accessor: readers bracket a
// whole logical operation (an entire query) with RLock/RUnlock so they see
// one consistent snapshot, and writers bracket compound updates (grid move +
// summary maintenance) with Lock/Unlock so intermediate states are never
// visible. The mutating methods Move/SetLocated/RemoveLocation do NOT
// self-lock — the caller holds the write lock, which is what lets aggindex
// update membership and summaries atomically. Single-threaded use needs no
// locking at all.
type Grid struct {
	mu         sync.RWMutex
	layout     *Layout
	pts        []Point
	located    []bool
	leaves     [][]int32 // leaf cell index -> member user IDs
	counts     [][]int32 // [level][cell] -> located users underneath
	bucketOf   []int32   // user -> leaf cell index, -1 when unlocated
	numLocated int
}

// RLock acquires the grid's read lock. Hold it for the duration of any
// multi-step read (a whole query) that must observe a consistent snapshot
// while writers may be active.
func (g *Grid) RLock() { g.mu.RLock() }

// RUnlock releases the read lock.
func (g *Grid) RUnlock() { g.mu.RUnlock() }

// Lock acquires the grid's write lock. Writers hold it across a compound
// mutation (e.g. a grid move plus dependent aggregate maintenance).
func (g *Grid) Lock() { g.mu.Lock() }

// Unlock releases the write lock.
func (g *Grid) Unlock() { g.mu.Unlock() }

// NewGrid indexes the users whose located flag is set. pts and located are
// referenced, not copied: Move and friends update pts/located in place so a
// dataset and all its indexes share one source of truth.
func NewGrid(layout *Layout, pts []Point, located []bool) (*Grid, error) {
	if len(pts) != len(located) {
		return nil, fmt.Errorf("spatial: %d points but %d located flags", len(pts), len(located))
	}
	g := &Grid{
		layout:   layout,
		pts:      pts,
		located:  located,
		leaves:   make([][]int32, layout.NumCells(layout.LeafLevel())),
		bucketOf: make([]int32, len(pts)),
	}
	for l := 0; l < layout.Levels; l++ {
		g.counts = append(g.counts, make([]int32, layout.NumCells(l)))
	}
	for id := range pts {
		g.bucketOf[id] = -1
		if located[id] {
			g.insert(int32(id))
		}
	}
	return g, nil
}

// Layout returns the grid geometry.
func (g *Grid) Layout() *Layout { return g.layout }

// NumLocated returns how many users currently have an indexed location.
func (g *Grid) NumLocated() int { return g.numLocated }

// Point returns the current location of a user (meaningless when not
// located).
func (g *Grid) Point(id int32) Point { return g.pts[id] }

// Located reports whether the user has a known location.
func (g *Grid) Located(id int32) bool { return g.located[id] }

// CellUsers returns the members of a leaf cell (do not modify).
func (g *Grid) CellUsers(leafIdx int32) []int32 { return g.leaves[leafIdx] }

// LeafOf returns the leaf cell currently holding the user, or -1 when the
// user has no location. Index layers that maintain per-cell aggregates (the
// AIS social summaries) use this to find the old bucket before a move.
func (g *Grid) LeafOf(id int32) int32 { return g.bucketOf[id] }

// CountAt returns the number of located users under a cell.
func (g *Grid) CountAt(level int, idx int32) int32 { return g.counts[level][idx] }

func (g *Grid) insert(id int32) {
	leaf := g.layout.CellIndex(g.layout.LeafLevel(), g.pts[id])
	g.leaves[leaf] = append(g.leaves[leaf], id)
	g.bucketOf[id] = leaf
	g.adjustCounts(leaf, +1)
	g.numLocated++
}

func (g *Grid) remove(id int32) {
	leaf := g.bucketOf[id]
	bucket := g.leaves[leaf]
	for i, u := range bucket {
		if u == id {
			bucket[i] = bucket[len(bucket)-1]
			g.leaves[leaf] = bucket[:len(bucket)-1]
			break
		}
	}
	g.bucketOf[id] = -1
	g.adjustCounts(leaf, -1)
	g.numLocated--
}

// adjustCounts propagates an occupancy delta from a leaf up every level.
func (g *Grid) adjustCounts(leaf int32, delta int32) {
	idx := leaf
	for l := g.layout.LeafLevel(); ; l-- {
		g.counts[l][idx] += delta
		if l == 0 {
			break
		}
		idx = g.layout.ParentIndex(l, idx)
	}
}

// Move relocates a user. Updates are handled as the paper describes: a
// deletion from the old cell and an insertion into the new one, skipping
// index maintenance when the user stays within the same leaf cell. When the
// grid is shared with concurrent readers the caller must hold the write
// lock (see the Grid doc comment).
func (g *Grid) Move(id int32, to Point) {
	if !g.located[id] {
		g.SetLocated(id, to)
		return
	}
	oldLeaf := g.bucketOf[id]
	newLeaf := g.layout.CellIndex(g.layout.LeafLevel(), to)
	g.pts[id] = to
	if oldLeaf == newLeaf {
		return
	}
	g.remove(id)
	g.located[id] = true
	g.insert(id)
}

// SetLocated gives a previously unlocated user a location.
func (g *Grid) SetLocated(id int32, p Point) {
	if g.located[id] {
		g.Move(id, p)
		return
	}
	g.pts[id] = p
	g.located[id] = true
	g.insert(id)
}

// RemoveLocation drops a user's location (he/she becomes "infinitely far").
func (g *Grid) RemoveLocation(id int32) {
	if !g.located[id] {
		return
	}
	g.remove(id)
	g.located[id] = false
}
