package spatial

import "ssrq/internal/pqueue"

// NNIterator streams users in ascending Euclidean distance from a query
// point using best-first branch-and-bound over the grid hierarchy: cells are
// queued by MinDist to the query, users by their exact distance. This is the
// incremental NN search SPA and TSA consume (paper §4.1).
//
// The iterator traverses one immutable snapshot, so it is inherently
// consistent: location updates published after NewNN are invisible to it.
type NNIterator struct {
	s        *Snapshot
	q        Point
	heap     *pqueue.Heap[nnItem]
	childBuf []int32
	userPops int
	cellPops int
}

type nnItem struct {
	level int16 // -1 for a user entry
	idx   int32 // cell index, or user ID for user entries
}

const userLevel = int16(-1)

// nnTie makes heap order deterministic: equal-key users pop before cells,
// users order by ID, cells by (level, index).
func nnTie(level int16, idx int32) int64 {
	if level == userLevel {
		return int64(idx)
	}
	return (int64(level)+1)<<40 | int64(idx)
}

// NewNN starts an incremental nearest-neighbor search at q over this
// snapshot.
func (s *Snapshot) NewNN(q Point) *NNIterator {
	it := NewNNIterator()
	it.Reset(s, q)
	return it
}

// NewNNIterator returns an un-armed iterator for pooling; call Reset before
// use.
func NewNNIterator() *NNIterator {
	return &NNIterator{heap: pqueue.NewHeap[nnItem](64)}
}

// Reset re-arms the iterator in place for a fresh search at q over snapshot
// s, reusing the heap and child-index storage. Query-serving paths pool
// iterators across queries.
func (it *NNIterator) Reset(s *Snapshot, q Point) {
	it.s = s
	it.q = q
	it.heap.Reset()
	it.userPops = 0
	it.cellPops = 0
	top := 0
	for idx := int32(0); idx < int32(s.layout.NumCells(top)); idx++ {
		if s.counts[top][idx] == 0 {
			continue
		}
		r := s.layout.CellRect(top, idx)
		it.heap.Push(r.MinDist(q), nnTie(int16(top), idx), nnItem{int16(top), idx})
	}
}

// NewNN starts an incremental nearest-neighbor search over the grid's
// writer-side view (single-threaded convenience; concurrent readers take a
// Snapshot first and iterate that).
func (g *Grid) NewNN(q Point) *NNIterator { return g.view().NewNN(q) }

// Next returns the next-closest located user and the exact distance.
// ok is false once all located users have been reported.
func (it *NNIterator) Next() (id int32, dist float64, ok bool) {
	for {
		e, ok := it.heap.Pop()
		if !ok {
			return 0, 0, false
		}
		item := e.Value
		if item.level == userLevel {
			it.userPops++
			return item.idx, e.Key, true
		}
		it.cellPops++
		level := int(item.level)
		if level == it.s.layout.LeafLevel() {
			for _, u := range it.s.leaves[item.idx] {
				d := it.s.Point(u).Dist(it.q)
				it.heap.Push(d, nnTie(userLevel, u), nnItem{userLevel, u})
			}
			continue
		}
		it.childBuf = it.s.layout.ChildIndices(level, item.idx, it.childBuf[:0])
		for _, c := range it.childBuf {
			if it.s.counts[level+1][c] == 0 {
				continue
			}
			r := it.s.layout.CellRect(level+1, c)
			it.heap.Push(r.MinDist(it.q), nnTie(int16(level+1), c), nnItem{int16(level + 1), c})
		}
	}
}

// UserPops returns how many users the iterator has reported (the spatial
// contribution to the paper's pop-ratio metric).
func (it *NNIterator) UserPops() int { return it.userPops }

// CellPops returns how many grid cells were expanded.
func (it *NNIterator) CellPops() int { return it.cellPops }

// Neighbor is one kNN result.
type Neighbor struct {
	ID   int32
	Dist float64
}

// KNN returns the k nearest located users to q, optionally skipping IDs for
// which skip returns true (e.g. the query user). Fewer than k results are
// returned when the snapshot runs out of users.
func (s *Snapshot) KNN(q Point, k int, skip func(int32) bool) []Neighbor {
	it := s.NewNN(q)
	out := make([]Neighbor, 0, k)
	for len(out) < k {
		id, d, ok := it.Next()
		if !ok {
			break
		}
		if skip != nil && skip(id) {
			continue
		}
		out = append(out, Neighbor{id, d})
	}
	return out
}

// KNN over the grid's writer-side view (single-threaded convenience).
func (g *Grid) KNN(q Point, k int, skip func(int32) bool) []Neighbor {
	return g.view().KNN(q, k, skip)
}
