package spatial

import "math"

// Per-user state (points, located flags, leaf assignments) is stored in
// fixed-size pages so an epoch that moves a handful of users copies a few
// kilobytes, not arrays proportional to the whole population.
const (
	pageShift = 10
	pageSize  = 1 << pageShift
	pageMask  = pageSize - 1
)

// Snapshot is one immutable epoch of grid state: the complete query-visible
// view — per-user coordinates and located flags, leaf membership, and the
// per-level occupancy counts. Snapshots are published by Grid.Publish through
// an atomic pointer; once published a snapshot never changes, so any number
// of readers may traverse it without locks while the writer builds the next
// epoch copy-on-write. Superseded snapshots are reclaimed by the garbage
// collector once the last reader drops its pointer — Go's GC plays the role
// of epoch-based reclamation.
type Snapshot struct {
	layout *Layout
	epoch  uint64
	n      int

	// Per-user pages: pts[id>>pageShift][id&pageMask].
	pts      [][]Point
	located  [][]bool
	bucketOf [][]int32

	leaves     [][]int32 // leaf cell index -> member user IDs
	counts     [][]int32 // [level][cell] -> located users underneath
	numLocated int
}

// Layout returns the grid geometry.
func (s *Snapshot) Layout() *Layout { return s.layout }

// Epoch returns the snapshot's version number. Epoch 0 is the state at
// construction; every Publish of a changed grid increments it by one.
func (s *Snapshot) Epoch() uint64 { return s.epoch }

// NumUsers returns the number of users the grid was built over.
func (s *Snapshot) NumUsers() int { return s.n }

// NumLocated returns how many users have an indexed location in this epoch.
func (s *Snapshot) NumLocated() int { return s.numLocated }

// Point returns the location of a user in this epoch (meaningless when not
// located).
func (s *Snapshot) Point(id int32) Point { return s.pts[id>>pageShift][id&pageMask] }

// Located reports whether the user has a known location in this epoch.
func (s *Snapshot) Located(id int32) bool { return s.located[id>>pageShift][id&pageMask] }

// LeafOf returns the leaf cell holding the user in this epoch, or -1 when
// the user has no location.
func (s *Snapshot) LeafOf(id int32) int32 { return s.bucketOf[id>>pageShift][id&pageMask] }

// CellUsers returns the members of a leaf cell (do not modify).
func (s *Snapshot) CellUsers(leafIdx int32) []int32 { return s.leaves[leafIdx] }

// CountAt returns the number of located users under a cell.
func (s *Snapshot) CountAt(level int, idx int32) int32 { return s.counts[level][idx] }

// EuclideanDist returns the distance between two users' locations in this
// epoch, +Inf when either lacks a location (the paper's convention for
// unknown whereabouts).
func (s *Snapshot) EuclideanDist(a, b int32) float64 {
	if !s.Located(a) || !s.Located(b) {
		return math.Inf(1)
	}
	return s.Point(a).Dist(s.Point(b))
}

// numPages returns how many pages cover n per-user slots.
func numPages(n int) int { return (n + pageSize - 1) / pageSize }
