package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestRectMinDist(t *testing.T) {
	r := Rect{1, 1, 3, 3}
	cases := []struct {
		p    Point
		want float64
	}{
		{Point{2, 2}, 0},              // inside
		{Point{1, 1}, 0},              // corner
		{Point{0, 2}, 1},              // left
		{Point{2, 5}, 2},              // above
		{Point{0, 0}, math.Sqrt2},     // diagonal corner
		{Point{5, 5}, 2 * math.Sqrt2}, // far diagonal
	}
	for _, c := range cases {
		if got := r.MinDist(c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("MinDist(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectMaxDistAndDiagonal(t *testing.T) {
	r := Rect{0, 0, 3, 4}
	if got := r.Diagonal(); got != 5 {
		t.Fatalf("Diagonal = %v", got)
	}
	if got := r.MaxDist(Point{0, 0}); got != 5 {
		t.Fatalf("MaxDist from corner = %v", got)
	}
	if got := r.MaxDist(Point{1.5, 2}); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("MaxDist from center = %v", got)
	}
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{{1, 5}, {-2, 3}, {4, -1}}
	r, ok := BoundingRect(pts, nil)
	if !ok || r != (Rect{-2, -1, 4, 5}) {
		t.Fatalf("BoundingRect = %+v, %v", r, ok)
	}
	located := []bool{false, true, true}
	r, ok = BoundingRect(pts, located)
	if !ok || r != (Rect{-2, -1, 4, 3}) {
		t.Fatalf("filtered BoundingRect = %+v, %v", r, ok)
	}
	if _, ok := BoundingRect(nil, nil); ok {
		t.Fatal("empty BoundingRect reported ok")
	}
	if _, ok := BoundingRect(pts, []bool{false, false, false}); ok {
		t.Fatal("all-unlocated BoundingRect reported ok")
	}
}

func TestLayoutValidation(t *testing.T) {
	good := Rect{0, 0, 1, 1}
	if _, err := NewLayout(good, 1, 2); err == nil {
		t.Fatal("s=1 accepted")
	}
	if _, err := NewLayout(good, 4, 0); err == nil {
		t.Fatal("levels=0 accepted")
	}
	if _, err := NewLayout(good, 4, 5); err == nil {
		t.Fatal("levels=5 accepted")
	}
	if _, err := NewLayout(Rect{0, 0, 0, 1}, 4, 2); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
}

func TestLayoutGeometry(t *testing.T) {
	l, err := NewLayout(Rect{0, 0, 100, 100}, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if l.Dim(0) != 10 || l.Dim(1) != 100 {
		t.Fatalf("dims = %d, %d", l.Dim(0), l.Dim(1))
	}
	if l.LeafLevel() != 1 {
		t.Fatalf("LeafLevel = %d", l.LeafLevel())
	}
	// Point (5.5, 12.3) is in top cell (0,1) = idx 10, leaf cell (5,12) = idx 1205.
	p := Point{5.5, 12.3}
	if got := l.CellIndex(0, p); got != 10 {
		t.Fatalf("top CellIndex = %d", got)
	}
	if got := l.CellIndex(1, p); got != 1205 {
		t.Fatalf("leaf CellIndex = %d", got)
	}
	if got := l.ParentIndex(1, 1205); got != 10 {
		t.Fatalf("ParentIndex = %d", got)
	}
	r := l.CellRect(1, 1205)
	if !r.Contains(p) {
		t.Fatalf("CellRect %+v does not contain %v", r, p)
	}
	if math.Abs(r.Width()-1) > 1e-12 || math.Abs(r.Height()-1) > 1e-12 {
		t.Fatalf("leaf cell size %vx%v, want 1x1", r.Width(), r.Height())
	}
}

func TestLayoutClampsOutOfBounds(t *testing.T) {
	l, _ := NewLayout(Rect{0, 0, 10, 10}, 4, 2)
	leaf := l.LeafLevel()
	dim := l.Dim(leaf)
	if got := l.CellIndex(leaf, Point{-5, -5}); got != 0 {
		t.Fatalf("clamp low = %d", got)
	}
	if got := l.CellIndex(leaf, Point{15, 15}); got != int32(dim*dim-1) {
		t.Fatalf("clamp high = %d", got)
	}
	// Max boundary maps to the last cell, not off the end.
	if got := l.CellIndex(leaf, Point{10, 10}); got != int32(dim*dim-1) {
		t.Fatalf("max corner = %d", got)
	}
}

func TestLayoutChildrenPartitionParent(t *testing.T) {
	l, _ := NewLayout(Rect{0, 0, 64, 64}, 4, 3)
	for level := 0; level < l.LeafLevel(); level++ {
		idx := int32(l.NumCells(level) / 2)
		parent := l.CellRect(level, idx)
		kids := l.ChildIndices(level, idx, nil)
		if len(kids) != l.S*l.S {
			t.Fatalf("level %d: %d children", level, len(kids))
		}
		area := 0.0
		for _, c := range kids {
			cr := l.CellRect(level+1, c)
			area += cr.Width() * cr.Height()
			if l.ParentIndex(level+1, c) != idx {
				t.Fatalf("child %d maps to wrong parent", c)
			}
		}
		if math.Abs(area-parent.Width()*parent.Height()) > 1e-6 {
			t.Fatalf("children area %v != parent area %v", area, parent.Width()*parent.Height())
		}
	}
}

func mkGrid(t *testing.T, rng *rand.Rand, n int, s, levels int, unlocatedFrac float64) (*Grid, []Point, []bool) {
	t.Helper()
	pts := make([]Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = Point{rng.Float64() * 100, rng.Float64() * 100}
		located[i] = rng.Float64() >= unlocatedFrac
	}
	l, err := NewLayout(Rect{0, 0, 100, 100}, s, levels)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(l, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return g, pts, located
}

func TestGridCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, _, located := mkGrid(t, rng, 500, 5, 2, 0.2)
	want := 0
	for _, l := range located {
		if l {
			want++
		}
	}
	if g.NumLocated() != want {
		t.Fatalf("NumLocated = %d, want %d", g.NumLocated(), want)
	}
	// Top-level counts must sum to the located count.
	var sum int32
	for idx := int32(0); idx < int32(g.Layout().NumCells(0)); idx++ {
		sum += g.CountAt(0, idx)
	}
	if int(sum) != want {
		t.Fatalf("top-level count sum = %d, want %d", sum, want)
	}
}

func TestNNMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(300)
		g, pts, located := mkGrid(t, rng, n, 3+rng.Intn(8), 1+rng.Intn(3), 0.15)
		q := Point{rng.Float64() * 100, rng.Float64() * 100}

		type ref struct {
			id int32
			d  float64
		}
		var want []ref
		for i := range pts {
			if located[i] {
				want = append(want, ref{int32(i), pts[i].Dist(q)})
			}
		}
		sort.Slice(want, func(i, j int) bool {
			if want[i].d != want[j].d {
				return want[i].d < want[j].d
			}
			return want[i].id < want[j].id
		})

		it := g.NewNN(q)
		for i, w := range want {
			id, d, ok := it.Next()
			if !ok {
				t.Fatalf("trial %d: iterator exhausted at %d/%d", trial, i, len(want))
			}
			if id != w.id || math.Abs(d-w.d) > 1e-9 {
				t.Fatalf("trial %d pos %d: got (%d,%v), want (%d,%v)", trial, i, id, d, w.id, w.d)
			}
		}
		if _, _, ok := it.Next(); ok {
			t.Fatalf("trial %d: iterator returned extra user", trial)
		}
		if it.UserPops() != len(want) {
			t.Fatalf("UserPops = %d, want %d", it.UserPops(), len(want))
		}
	}
}

func TestKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, pts, located := mkGrid(t, rng, 200, 6, 2, 0)
	_ = located
	q := Point{50, 50}
	res := g.KNN(q, 10, func(id int32) bool { return id == 7 })
	if len(res) != 10 {
		t.Fatalf("got %d results", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("kNN results not sorted")
		}
	}
	for _, r := range res {
		if r.ID == 7 {
			t.Fatal("skipped user returned")
		}
		if math.Abs(r.Dist-pts[r.ID].Dist(q)) > 1e-12 {
			t.Fatal("reported distance wrong")
		}
	}
	// k larger than population.
	all := g.KNN(q, 10_000, nil)
	if len(all) != g.NumLocated() {
		t.Fatalf("oversized k returned %d, want %d", len(all), g.NumLocated())
	}
}

func TestGridMove(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, _, _ := mkGrid(t, rng, 100, 4, 2, 0)
	id := int32(5)
	g.Move(id, Point{99, 99})
	if g.Point(id) != (Point{99, 99}) {
		t.Fatal("Move did not update the stored point")
	}
	res := g.KNN(Point{99.5, 99.5}, 1, nil)
	if len(res) != 1 || res[0].ID != id {
		t.Fatalf("moved user not found near target: %+v", res)
	}
	// Move within the same leaf cell must also update the point.
	before := g.Point(id)
	g.Move(id, Point{before.X - 1e-6, before.Y})
	if g.Point(id).X >= before.X {
		t.Fatal("intra-cell move lost")
	}
}

func TestGridLocateUnlocateCycle(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, _, _ := mkGrid(t, rng, 50, 4, 2, 0)
	id := int32(10)
	n0 := g.NumLocated()
	g.RemoveLocation(id)
	if g.NumLocated() != n0-1 || g.Located(id) {
		t.Fatal("RemoveLocation failed")
	}
	g.RemoveLocation(id) // idempotent
	if g.NumLocated() != n0-1 {
		t.Fatal("double RemoveLocation changed counts")
	}
	g.SetLocated(id, Point{1, 1})
	if g.NumLocated() != n0 || !g.Located(id) {
		t.Fatal("SetLocated failed")
	}
	res := g.KNN(Point{1, 1}, 1, nil)
	if res[0].ID != id {
		t.Fatalf("relocated user not nearest: %+v", res)
	}
	// Move on an unlocated user acts as SetLocated.
	g.RemoveLocation(id)
	g.Move(id, Point{2, 2})
	if !g.Located(id) {
		t.Fatal("Move on unlocated user did not locate")
	}
}

func TestGridCountsStayConsistentUnderChurn(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, _, _ := mkGrid(t, rng, 300, 5, 3, 0.3)
	for step := 0; step < 2000; step++ {
		id := int32(rng.Intn(300))
		switch rng.Intn(3) {
		case 0:
			g.Move(id, Point{rng.Float64() * 100, rng.Float64() * 100})
		case 1:
			g.RemoveLocation(id)
		case 2:
			g.SetLocated(id, Point{rng.Float64() * 100, rng.Float64() * 100})
		}
	}
	// Invariant: counts at every level sum to NumLocated, and leaf
	// membership matches the located flags.
	for l := 0; l < g.Layout().Levels; l++ {
		var sum int32
		for idx := int32(0); idx < int32(g.Layout().NumCells(l)); idx++ {
			sum += g.CountAt(l, idx)
		}
		if int(sum) != g.NumLocated() {
			t.Fatalf("level %d count sum %d != located %d", l, sum, g.NumLocated())
		}
	}
	members := 0
	for idx := int32(0); idx < int32(g.Layout().NumCells(g.Layout().LeafLevel())); idx++ {
		for _, u := range g.CellUsers(idx) {
			members++
			if !g.Located(u) {
				t.Fatalf("unlocated user %d present in grid", u)
			}
			if g.Layout().CellIndex(g.Layout().LeafLevel(), g.Point(u)) != idx {
				t.Fatalf("user %d in wrong leaf", u)
			}
		}
	}
	if members != g.NumLocated() {
		t.Fatalf("leaf membership %d != located %d", members, g.NumLocated())
	}
}

func TestNNOnMismatchedSlices(t *testing.T) {
	l, _ := NewLayout(Rect{0, 0, 1, 1}, 2, 1)
	if _, err := NewGrid(l, make([]Point, 3), make([]bool, 2)); err == nil {
		t.Fatal("mismatched slices accepted")
	}
}
