// Package sub implements continuous top-k subscriptions over an SSRQ
// engine: a standing (user, k, α) query that receives incremental result
// deltas per published epoch instead of being re-run from scratch.
//
// The engine listens to the index's epoch-delta stream (aggindex.SetNotify)
// and accumulates the batch's touched-user set. A single evaluator
// goroutine drains the set in rounds: for each subscriber it first runs a
// sound skip test — the subscriber's result can only change if the
// subscriber itself moved, a current result member was touched, the social
// state changed, or some touched user's best-possible score
// α·plb + (1−α)·d (Lemma-2 landmark lower bound plus exact Euclidean
// distance) reaches the current kth score — and only subscribers whose
// test fails pay a re-evaluation through the engine's normal (pooled,
// allocation-free) query path. Under drift workloads most epochs touch
// users far from most subscribers, so the overwhelming majority of
// (subscriber × epoch) pairs are proven unchanged and skipped.
//
// Consecutive epochs that publish between two evaluator rounds coalesce
// into one delta: every result the engine emits is exact for the world at
// its evaluation, and after a quiescent barrier (Engine.Sync following the
// source's Flush) every subscriber's result equals a from-scratch query.
package sub

import (
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"ssrq/internal/aggindex"
	"ssrq/internal/core"
	"ssrq/internal/fof"
	"ssrq/internal/graph"
	"ssrq/internal/landmark"
	"ssrq/internal/spatial"
)

// ErrClosed is returned by Subscribe after the engine has been closed.
var ErrClosed = errors.New("sub: engine closed")

// Source is the engine surface the subscription layer consumes. Both
// core.Engine and shard.Engine satisfy it; locations and scores are in
// the engine's normalized units.
type Source interface {
	Query(algo core.Algorithm, q graph.VertexID, prm core.Params) (*core.Result, error)
	OnEpoch(fn func(aggindex.EpochDelta))
	UserLocation(id int32) (spatial.Point, bool)
}

// Engine maintains the active subscriptions over one Source.
type Engine struct {
	src Source

	mu   sync.Mutex
	cond *sync.Cond
	// seq counts change notifications (epoch deltas and subscription
	// registrations); done is the highest seq whose round has completed.
	// Waiting for done ≥ seq is the evaluation barrier behind Sync.
	seq, done uint64
	closed    bool
	// touched accumulates the users moved since the last round; the
	// evaluator swaps it with the cleared spare so the callback never
	// blocks on an in-flight round.
	touched      map[int32]struct{}
	touchedSpare map[int32]struct{}
	// socialChanged is set by any social sync (edge op, landmark or CH
	// install): social scores have no per-user delta set, so the next
	// round re-evaluates every subscriber.
	socialChanged bool
	// lastSn is the most recently notified snapshot; its landmark tables
	// back the round's lower-bound tests. (Sharded sources share one
	// substrate, so any shard's snapshot carries the same tables.)
	lastSn *aggindex.Snapshot
	subs   []*Subscription // copy-on-write; iterate without mu

	doneCh  chan struct{}
	closedA atomic.Bool

	// fofIx is the source's friends-of-friends bound index when it exposes
	// one; fofSc is its per-subscriber scratch, touched only by the
	// evaluator goroutine.
	fofIx *fof.Index
	fofSc fof.Scratch

	rounds, evals, skips, notified atomic.Int64
}

// Stats is a point-in-time snapshot of the engine's counters. Evals and
// Skips partition the (subscriber × round) pairs of epoch-triggered
// rounds; their ratio is the skip rate. Rounds triggered only by
// Subscribe calls count their initial evaluations in Evals but record no
// skips, so a subscribe storm cannot inflate the skip rate.
type Stats struct {
	Active   int   // currently registered subscriptions
	Rounds   int64 // evaluation rounds run
	Evals    int64 // full query re-evaluations paid
	Skips    int64 // (subscriber × round) pairs proven unchanged
	Notified int64 // result changes pushed to subscribers
}

// New starts a subscription engine over src. Close it before closing src.
func New(src Source) *Engine {
	e := &Engine{
		src:          src,
		touched:      make(map[int32]struct{}),
		touchedSpare: make(map[int32]struct{}),
		doneCh:       make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	if f, ok := src.(interface{ FoFIndex() *fof.Index }); ok {
		e.fofIx = f.FoFIndex()
	}
	src.OnEpoch(e.onEpoch)
	go e.loop()
	return e
}

// onEpoch is the index publication callback. It runs under the index
// writer lock, so it only records the delta and signals the evaluator.
func (e *Engine) onEpoch(d aggindex.EpochDelta) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	for _, id := range d.Moved {
		e.touched[id] = struct{}{}
	}
	if d.SocialChanged {
		e.socialChanged = true
	}
	e.lastSn = d.Snapshot
	e.seq++
	e.mu.Unlock()
	e.cond.Broadcast()
}

// Subscribe registers a standing (q, k, α) query and blocks until its
// initial evaluation completes, so the subscription starts with a
// populated result (empty when q has no known location). The caller owns
// the returned Subscription and must Close it when done.
func (e *Engine) Subscribe(q int32, k int, alpha float64) (*Subscription, error) {
	return e.SubscribeParams(q, core.Params{K: k, Alpha: alpha})
}

// SubscribeParams is Subscribe with full query parameters — in particular a
// label filter, which restricts the standing result to users carrying at
// least one requested label and lets the per-epoch skip test discard touched
// users the filter excludes.
func (e *Engine) SubscribeParams(q int32, prm core.Params) (*Subscription, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	st := &Subscription{eng: e, q: q, prm: prm, notify: make(chan struct{}, 1)}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	subs := make([]*Subscription, len(e.subs)+1)
	copy(subs, e.subs)
	subs[len(e.subs)] = st
	e.subs = subs
	e.seq++
	target := e.seq
	e.mu.Unlock()
	e.cond.Broadcast()
	if !e.waitDone(target) {
		return nil, ErrClosed
	}
	return st, nil
}

// Sync blocks until every epoch published (and every subscription
// registered) before the call has been through an evaluation round — the
// subscription analogue of the updater's Flush barrier. Callers wanting a
// fully settled world flush the source first. Returns immediately on a
// closed engine.
func (e *Engine) Sync() {
	e.mu.Lock()
	target := e.seq
	e.mu.Unlock()
	e.waitDone(target)
}

// waitDone blocks until done reaches target; false when the engine closed
// first.
func (e *Engine) waitDone(target uint64) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.done < target && !e.closed {
		e.cond.Wait()
	}
	return e.done >= target
}

// Stats returns the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	n := len(e.subs)
	e.mu.Unlock()
	return Stats{
		Active:   n,
		Rounds:   e.rounds.Load(),
		Evals:    e.evals.Load(),
		Skips:    e.skips.Load(),
		Notified: e.notified.Load(),
	}
}

// Close detaches from the source, stops the evaluator (waiting out any
// in-flight round), and closes every live subscription's notify channel,
// unblocking all consumers. Idempotent. Must complete before the source
// engine itself is closed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.closedA.Store(true)
	subs := e.subs
	e.subs = nil
	e.mu.Unlock()
	e.cond.Broadcast()
	<-e.doneCh
	for _, st := range subs {
		st.closeNotify()
	}
	e.src.OnEpoch(nil)
}

// loop is the evaluator: it drains accumulated deltas in rounds, each
// round skip-testing every subscriber against the stolen touched set and
// re-evaluating only the ones that might have changed.
func (e *Engine) loop() {
	defer close(e.doneCh)
	for {
		e.mu.Lock()
		for !e.closed && e.seq == e.done {
			e.cond.Wait()
		}
		if e.closed {
			e.mu.Unlock()
			return
		}
		target := e.seq
		touched := e.touched
		e.touched = e.touchedSpare
		social := e.socialChanged
		e.socialChanged = false
		sn := e.lastSn
		subs := e.subs
		e.mu.Unlock()

		e.runRound(subs, touched, social, sn)

		clear(touched)
		e.mu.Lock()
		e.touchedSpare = touched
		e.done = target
		e.mu.Unlock()
		e.cond.Broadcast()
	}
}

// runRound skip-tests and re-evaluates the given subscription list
// against one stolen delta set.
func (e *Engine) runRound(subs []*Subscription, touched map[int32]struct{}, social bool, sn *aggindex.Snapshot) {
	if len(subs) == 0 {
		return
	}
	e.rounds.Add(1)
	// A round with no world change was triggered by Subscribe alone: it
	// exists to run initial evaluations and records no skips.
	admin := len(touched) == 0 && !social
	for _, st := range subs {
		if e.closedA.Load() {
			return
		}
		if st.isClosed() {
			continue
		}
		if !social && !e.subDirty(st, touched, sn) {
			if !admin {
				e.skips.Add(1)
			}
			continue
		}
		e.evals.Add(1)
		e.evaluate(st)
	}
}

// subDirty reports whether the touched set could possibly change st's
// result. A false return is a proof of "no change": the subscriber and
// every current result member are untouched (so every current score is
// unchanged), and every touched outsider's best possible score — the
// Lemma-2 landmark lower bound on social proximity plus its exact spatial
// distance — strictly exceeds the current kth score, so it cannot enter
// even on the (F, ID) tiebreak. Runs only on the evaluator goroutine,
// which is the sole writer of st's result state.
func (e *Engine) subDirty(st *Subscription, touched map[int32]struct{}, sn *aggindex.Snapshot) bool {
	if !st.everEval {
		return true // initial evaluation still pending
	}
	if _, ok := touched[st.q]; ok {
		return true // the subscriber itself moved
	}
	if len(touched) == 0 {
		return false
	}
	qpt, ok := e.src.UserLocation(st.q)
	if !ok {
		// Unlocated subscriber: its query yields the empty result and
		// stays empty until q itself is located again (caught above).
		return len(st.cur) > 0
	}
	kth := math.Inf(1)
	if len(st.cur) >= st.prm.K {
		kth = st.cur[len(st.cur)-1].F
	}
	var lm *landmark.Set
	if sn != nil {
		lm = sn.Landmarks()
	}
	alpha := st.prm.Alpha
	filter := st.prm.Filter
	fofArmed := false
	for u := range touched {
		if u == st.q {
			continue
		}
		if _, in := st.curSet[u]; in {
			return true // a current result member moved → rescore at least
		}
		if filter != 0 && sn != nil && sn.UserLabels(u)&filter == 0 {
			continue // the filter excludes u: it cannot enter the result
		}
		upt, located := e.src.UserLocation(u)
		if !located {
			continue // unlocated: f = +Inf, cannot enter the result
		}
		d := (1 - alpha) * qpt.Dist(upt)
		if d > kth {
			continue // the spatial term alone already exceeds kth
		}
		if lm == nil {
			return true
		}
		plb := lm.LowerBound(graph.VertexID(st.q), graph.VertexID(u))
		if e.fofIx != nil {
			// Tighten with the friends-of-friends bound; armed lazily so
			// rounds whose touched users all fail the spatial test stay free.
			if !fofArmed {
				e.fofSc.Arm(e.fofIx, sn.SocialGraph(), graph.VertexID(st.q), fof.DefaultBudget)
				fofArmed = true
			}
			if f := e.fofSc.LowerBound(graph.VertexID(u)); f > plb {
				plb = f
			}
		}
		if alpha*plb+d <= kth {
			return true // cannot prove u stays out
		}
	}
	return false
}

// evaluate re-runs st's query from scratch and installs the result. A
// query error (the subscriber lost its location) yields the empty result.
func (e *Engine) evaluate(st *Subscription) {
	res, err := e.src.Query(core.AIS, graph.VertexID(st.q), st.prm)
	var entries []core.Entry
	if err == nil {
		entries = res.Entries
	}
	st.everEval = true
	st.setResult(entries)
}
