package sub_test

import (
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"ssrq/internal/core"
	"ssrq/internal/dataset"
	"ssrq/internal/gen"
	"ssrq/internal/graph"
	"ssrq/internal/shard"
	"ssrq/internal/spatial"
	"ssrq/internal/sub"
)

// world is the full engine surface the harness drives: sub.Source plus the
// update pipeline. Both core.Engine and shard.Engine satisfy it.
type world interface {
	sub.Source
	MoveUserAsync(id int32, to spatial.Point) error
	RemoveUserLocationAsync(id int32) error
	AddFriendAsync(u, v int32, w float64) error
	RemoveFriendAsync(u, v int32) error
	Flush()
	Close()
}

func newDataset(t testing.TB, n int, seed int64) *dataset.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	edges, pts, located, err := gen.GeoSocial(gen.GeoSocialConfig{
		N: n, M: 4, PLocal: 0.6, Cities: 5, LocatedFrac: 0.85,
	}, rng)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BuildGraph(n, edges, gen.DegreeProductWeights(n, edges))
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.New("subtest", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func locatedUsers(ds *dataset.Dataset) []graph.VertexID {
	var out []graph.VertexID
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located[v] {
			out = append(out, graph.VertexID(v))
		}
	}
	return out
}

// oracle re-runs the standing query from scratch; an unlocated subscriber
// maps to the empty result, exactly like the subscription engine.
func oracle(t *testing.T, src world, q int32, prm core.Params) []core.Entry {
	t.Helper()
	res, err := src.Query(core.AIS, graph.VertexID(q), prm)
	if err != nil {
		return nil
	}
	return res.Entries
}

func sameEntries(t *testing.T, label string, got, want []core.Entry) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d entries, want %d\n got:  %+v\n want: %+v", label, len(got), len(want), got, want)
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.ID != w.ID || math.Abs(g.F-w.F) > 1e-12 {
			t.Fatalf("%s: rank %d got (id=%d f=%v), want (id=%d f=%v)", label, i, g.ID, g.F, w.ID, w.F)
		}
	}
}

// applyDelta maintains a client-side materialized view from the delta
// stream alone, re-sorting by (F, ID) — what an SSE consumer would do.
func applyDelta(t *testing.T, view []core.Entry, d sub.Delta) []core.Entry {
	t.Helper()
	m := make(map[int32]core.Entry, len(view)+len(d.Added))
	for _, e := range view {
		m[e.ID] = e
	}
	for _, id := range d.Removed {
		if _, ok := m[id]; !ok {
			t.Fatalf("delta removes %d which the view never held", id)
		}
		delete(m, id)
	}
	for _, e := range d.Rescored {
		if _, ok := m[e.ID]; !ok {
			t.Fatalf("delta rescores %d which the view never held", e.ID)
		}
		m[e.ID] = e
	}
	for _, e := range d.Added {
		if _, ok := m[e.ID]; ok {
			t.Fatalf("delta adds %d which the view already holds", e.ID)
		}
		m[e.ID] = e
	}
	out := make([]core.Entry, 0, len(m))
	for _, e := range m {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].F != out[j].F {
			return out[i].F < out[j].F
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// runDifferential replays one randomized interleaved move+edge stream and,
// at every quiescent point, requires each subscription's result — and the
// view materialized purely from its deltas — to equal a from-scratch
// query. Because the equality is checked after every chunk, any unsound
// skip (an epoch the bound test wrongly proved unable to change a result)
// surfaces as a divergence here.
func runDifferential(t *testing.T, src world, ds *dataset.Dataset, seed int64) {
	e := sub.New(src)
	defer e.Close()

	rng := rand.New(rand.NewSource(seed))
	users := locatedUsers(ds)
	prm := core.Params{K: 10, Alpha: 0.3}
	bounds := ds.Bounds()
	w, h := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY

	nSubs := 40
	if nSubs > len(users)/2 {
		nSubs = len(users) / 2
	}
	subs := make([]*sub.Subscription, 0, nSubs)
	views := make(map[*sub.Subscription][]core.Entry, nSubs)
	for i := 0; i < nSubs; i++ {
		st, err := e.Subscribe(int32(users[i]), prm.K, prm.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, st)
		views[st] = applyDelta(t, nil, st.Delta())
	}

	for chunk := 0; chunk < 10; chunk++ {
		// Social churn only every third chunk: an edge op forces a full
		// re-evaluation round (social scores have no per-user delta), so
		// the interleaving must leave move-only rounds for the bound test
		// to prove skips on.
		social := chunk%3 == 0
		for i := 0; i < 80; i++ {
			pick := users[rng.Intn(len(users))]
			op := rng.Intn(12)
			if !social && op < 2 {
				op = 3
			}
			switch op {
			case 0:
				u, v := users[rng.Intn(len(users))], users[rng.Intn(len(users))]
				if u != v {
					if err := src.AddFriendAsync(int32(u), int32(v), 0.3+rng.Float64()); err != nil {
						t.Fatal(err)
					}
				}
			case 1:
				u, v := users[rng.Intn(len(users))], users[rng.Intn(len(users))]
				if u != v {
					if err := src.RemoveFriendAsync(int32(u), int32(v)); err != nil {
						t.Fatal(err)
					}
				}
			case 2:
				if err := src.RemoveUserLocationAsync(int32(pick)); err != nil {
					t.Fatal(err)
				}
			default:
				var to spatial.Point
				if cur, ok := src.UserLocation(int32(pick)); ok && rng.Intn(3) > 0 {
					// Local jitter — the regime where the skip bounds bite.
					to = spatial.Point{X: cur.X + (rng.Float64()-0.5)*w/50, Y: cur.Y + (rng.Float64()-0.5)*h/50}
					if !bounds.Contains(to) {
						to = spatial.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
					}
				} else {
					to = spatial.Point{X: bounds.MinX + rng.Float64()*w, Y: bounds.MinY + rng.Float64()*h}
				}
				if err := src.MoveUserAsync(int32(pick), to); err != nil {
					t.Fatal(err)
				}
			}
		}
		src.Flush()
		e.Sync()

		for i, st := range subs {
			want := oracle(t, src, st.User(), prm)
			got := st.Result()
			sameEntries(t, "chunk "+string(rune('0'+chunk))+" subscription vs oracle", got, want)
			views[st] = applyDelta(t, views[st], st.Delta())
			sameEntries(t, "delta-applied view vs result", views[st], got)
			if chunk == 9 && i < 4 {
				// Spot-check against the engine's own exact method too.
				brute, err := src.Query(core.BruteForce, graph.VertexID(st.User()), prm)
				if err == nil {
					sameEntries(t, "subscription vs brute force", got, brute.Entries)
				}
			}
		}
	}

	st := e.Stats()
	if st.Evals == 0 {
		t.Fatalf("no evaluations ran: %+v", st)
	}
	if st.Skips == 0 {
		t.Fatalf("bound test never skipped anything under local jitter: %+v", st)
	}
	t.Logf("stats: %+v (skip rate %.2f)", st, float64(st.Skips)/float64(st.Skips+st.Evals))
}

func TestDifferentialMonolithic(t *testing.T) {
	ds := newDataset(t, 400, 21)
	eng, err := core.NewEngine(ds, core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	runDifferential(t, eng, ds, 101)
}

func TestDifferentialSharded(t *testing.T) {
	ds := newDataset(t, 400, 22)
	eng, err := shard.New(ds, 4, core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	runDifferential(t, eng, ds, 102)
}

// TestSkipSoundnessProvably builds a world with two disconnected, far-apart
// communities: a subscriber in one, a mover in the other. Every one of the
// mover's epochs must be provably unable to change the subscriber's result
// (landmark bound +Inf across components, spatial distance huge), so the
// engine must skip them all — and the result must indeed never change.
func TestSkipSoundnessProvably(t *testing.T) {
	const n = 40
	b := graph.NewBuilder(n)
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	// Community A: users 0..19 in a tight cluster near the origin, a path
	// graph. Community B: users 20..39 far away, its own path graph.
	for i := 0; i < 20; i++ {
		if i > 0 {
			if err := b.AddEdge(int32(i-1), int32(i), 1); err != nil {
				t.Fatal(err)
			}
		}
		pts[i] = spatial.Point{X: float64(i) * 0.1, Y: 0}
		located[i] = true
	}
	for i := 20; i < n; i++ {
		if i > 20 {
			if err := b.AddEdge(int32(i-1), int32(i), 1); err != nil {
				t.Fatal(err)
			}
		}
		pts[i] = spatial.Point{X: 1000 + float64(i)*0.1, Y: 1000}
		located[i] = true
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.New("twocomm", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(ds, core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := sub.New(eng)
	defer e.Close()

	prm := core.Params{K: 5, Alpha: 0.3}
	st, err := e.Subscribe(0, prm.K, prm.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	want := st.Result()
	if len(want) == 0 {
		t.Fatal("subscriber 0 got an empty initial result")
	}
	round0 := st.Round()
	base := e.Stats()

	// 30 epochs of community-B movement, each flushed individually so every
	// epoch is its own evaluation round.
	bnds := ds.Bounds()
	for i := 0; i < 30; i++ {
		id := int32(25 + i%10)
		cur, ok := eng.UserLocation(id)
		if !ok {
			t.Fatalf("mover %d unlocated", id)
		}
		to := spatial.Point{X: cur.X + 0.01, Y: cur.Y + 0.01}
		if !bnds.Contains(to) {
			to = cur
		}
		if err := eng.MoveUser(id, to); err != nil {
			t.Fatal(err)
		}
		e.Sync()
	}

	stat := e.Stats()
	if evals := stat.Evals - base.Evals; evals != 0 {
		t.Fatalf("expected every cross-community epoch skipped, got %d evals", evals)
	}
	if skips := stat.Skips - base.Skips; skips == 0 {
		t.Fatalf("no skips recorded: %+v", stat)
	}
	if st.Round() != round0 {
		t.Fatalf("result version moved (%d -> %d) though nothing could change", round0, st.Round())
	}
	sameEntries(t, "after cross-community churn", st.Result(), oracle(t, eng, 0, prm))
}

// TestSubscribersAcrossRebalance is the -race stress: live subscribers and
// concurrent movers while the sharded engine is forced through re-cuts,
// then a quiescent exactness check.
func TestSubscribersAcrossRebalance(t *testing.T) {
	ds := newDataset(t, 400, 31)
	eng, err := shard.New(ds, 4, core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := sub.New(eng)
	defer e.Close()

	users := locatedUsers(ds)
	prm := core.Params{K: 10, Alpha: 0.3}
	var subs []*sub.Subscription
	for i := 0; i < 16; i++ {
		st, err := e.Subscribe(int32(users[i]), prm.K, prm.Alpha)
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, st)
	}

	bounds := ds.Bounds()
	w, h := bounds.MaxX-bounds.MinX, bounds.MaxY-bounds.MinY
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // mover: drift the population into one corner to skew the cut
		defer wg.Done()
		rng := rand.New(rand.NewSource(777))
		for {
			select {
			case <-stop:
				return
			default:
			}
			id := users[rng.Intn(len(users))]
			to := spatial.Point{
				X: bounds.MinX + rng.Float64()*w/4,
				Y: bounds.MinY + rng.Float64()*h/4,
			}
			if err := eng.MoveUserAsync(int32(id), to); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // reader: hammer the subscription read surface
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, st := range subs {
				_ = st.Result()
				st.Round()
			}
		}
	}()

	for i := 0; i < 3; i++ {
		eng.Flush()
		eng.Rebalance()
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	eng.Flush()
	e.Sync()
	for _, st := range subs {
		sameEntries(t, "post-rebalance", st.Result(), oracle(t, eng, st.User(), prm))
	}
}

// TestCloseSettlesGoroutines: Engine.Close must stop the evaluator and
// unblock every Notify consumer; no goroutine may outlive it.
func TestCloseSettlesGoroutines(t *testing.T) {
	ds := newDataset(t, 200, 41)
	before := runtime.NumGoroutine()
	eng, err := core.NewEngine(ds, core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	e := sub.New(eng)
	users := locatedUsers(ds)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		st, err := e.Subscribe(int32(users[i]), 5, 0.3)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { // a consumer blocked on Notify, like an SSE handler
			defer wg.Done()
			for range st.Notify() {
				st.Delta()
			}
		}()
	}
	// Subscribe mid-flight churn so Close races an active evaluator.
	bounds := ds.Bounds()
	for i := 0; i < 64; i++ {
		id := users[i%len(users)]
		if err := eng.MoveUserAsync(int32(id), spatial.Point{X: bounds.MinX, Y: bounds.MinY}); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	wg.Wait() // Close must have closed every Notify channel
	eng.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines did not settle: before=%d now=%d", before, runtime.NumGoroutine())
}

// TestSubscribeUnlocatedUser: a subscriber without a location starts empty
// and starts serving once located.
func TestSubscribeUnlocatedUser(t *testing.T) {
	ds := newDataset(t, 200, 51)
	eng, err := core.NewEngine(ds, core.Options{GridS: 4, GridLevels: 2, NumLandmarks: 4, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	e := sub.New(eng)
	defer e.Close()

	var uq int32 = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if !ds.Located[v] {
			uq = int32(v)
			break
		}
	}
	if uq < 0 {
		t.Skip("dataset fully located")
	}
	st, err := e.Subscribe(uq, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := st.Result(); len(got) != 0 {
		t.Fatalf("unlocated subscriber got %d entries", len(got))
	}
	bounds := ds.Bounds()
	if err := eng.MoveUser(uq, spatial.Point{X: (bounds.MinX + bounds.MaxX) / 2, Y: (bounds.MinY + bounds.MaxY) / 2}); err != nil {
		t.Fatal(err)
	}
	e.Sync()
	want := oracle(t, eng, uq, core.Params{K: 5, Alpha: 0.3})
	if len(want) == 0 {
		t.Fatal("oracle still empty after locating the subscriber")
	}
	sameEntries(t, "after locating", st.Result(), want)
	d := st.Delta()
	if len(d.Added) != len(want) || len(d.Removed) != 0 {
		t.Fatalf("expected a pure-added delta, got %+v", d)
	}
}
