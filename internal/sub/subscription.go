package sub

import (
	"sort"
	"sync"

	"ssrq/internal/core"
)

// Subscription is one standing (user, k, α) query. The evaluator installs
// new results as the world changes; consumers either poll Result, or wait
// on Notify and drain the change with Delta. All methods are safe for
// concurrent use.
type Subscription struct {
	eng *Engine
	q   int32
	prm core.Params

	// everEval is owned by the evaluator goroutine (the only reader and
	// writer): false until the initial evaluation has run.
	everEval bool

	mu     sync.Mutex
	closed bool
	// notify carries an edge-triggered "result changed" signal (cap 1,
	// never blocks the evaluator); closed on Close to unblock consumers.
	notify chan struct{}
	// cur is the latest installed result, ascending (F, ID); curSet is
	// its ID membership. Written only by the evaluator (under mu, for
	// concurrent readers); the evaluator itself may read them lock-free.
	cur    []core.Entry
	curSet map[int32]struct{}
	round  uint64
	// emitted is the result state as of the last Delta call; the next
	// Delta diffs cur against it.
	emitted []core.Entry
}

// Delta is the difference between two consecutive emitted result states:
// Added entries are new to the top-k (in result order), Rescored entries
// remain but changed score, Removed lists the IDs that dropped out
// (ascending). The first Delta after Subscribe carries the full initial
// result as Added.
type Delta struct {
	Round    uint64
	Added    []core.Entry
	Rescored []core.Entry
	Removed  []int32
}

// Empty reports whether the delta carries no change.
func (d Delta) Empty() bool {
	return len(d.Added) == 0 && len(d.Rescored) == 0 && len(d.Removed) == 0
}

// User returns the subscriber.
func (st *Subscription) User() int32 { return st.q }

// Params returns the standing query's parameters.
func (st *Subscription) Params() core.Params { return st.prm }

// Notify returns the change-signal channel: it receives (coalesced) after
// every installed result change and is closed when the subscription — or
// the whole engine — closes.
func (st *Subscription) Notify() <-chan struct{} { return st.notify }

// Result returns a copy of the current result, ascending (F, ID).
func (st *Subscription) Result() []core.Entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	return append([]core.Entry(nil), st.cur...)
}

// Round returns the result version: it increments once per installed
// change, so consumers can cheaply detect "anything new since I looked".
func (st *Subscription) Round() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.round
}

// Delta returns the change since the previous Delta call (the full result,
// as Added, on the first call) and marks the current state as emitted.
func (st *Subscription) Delta() Delta {
	st.mu.Lock()
	defer st.mu.Unlock()
	d := Delta{Round: st.round}
	prev := make(map[int32]core.Entry, len(st.emitted))
	for _, en := range st.emitted {
		prev[en.ID] = en
	}
	for _, en := range st.cur {
		old, seen := prev[en.ID]
		switch {
		case !seen:
			d.Added = append(d.Added, en)
		case old != en:
			d.Rescored = append(d.Rescored, en)
		}
		delete(prev, en.ID)
	}
	for id := range prev {
		d.Removed = append(d.Removed, id)
	}
	sort.Slice(d.Removed, func(i, j int) bool { return d.Removed[i] < d.Removed[j] })
	st.emitted = append(st.emitted[:0], st.cur...)
	return d
}

// Close unsubscribes: the evaluator stops considering the subscription
// and the notify channel is closed. Idempotent; safe concurrently with
// Engine.Close.
func (st *Subscription) Close() {
	e := st.eng
	e.mu.Lock()
	for i, s := range e.subs {
		if s == st {
			subs := make([]*Subscription, 0, len(e.subs)-1)
			subs = append(subs, e.subs[:i]...)
			subs = append(subs, e.subs[i+1:]...)
			e.subs = subs
			break
		}
	}
	e.mu.Unlock()
	st.closeNotify()
}

// closeNotify marks the subscription closed and closes the signal channel
// exactly once.
func (st *Subscription) closeNotify() {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		close(st.notify)
	}
	st.mu.Unlock()
}

func (st *Subscription) isClosed() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.closed
}

// setResult installs a freshly evaluated result, bumping the round and
// signalling the consumer only when it differs from the current one.
// Called only by the evaluator goroutine.
func (st *Subscription) setResult(entries []core.Entry) {
	st.mu.Lock()
	same := len(entries) == len(st.cur)
	if same {
		for i := range entries {
			if entries[i] != st.cur[i] {
				same = false
				break
			}
		}
	}
	if same {
		st.mu.Unlock()
		return
	}
	st.cur = append(st.cur[:0], entries...)
	if st.curSet == nil {
		st.curSet = make(map[int32]struct{}, len(entries))
	} else {
		clear(st.curSet)
	}
	for _, en := range entries {
		st.curSet[en.ID] = struct{}{}
	}
	st.round++
	if !st.closed {
		select {
		case st.notify <- struct{}{}:
		default:
		}
	}
	st.mu.Unlock()
	st.eng.notified.Add(1)
}
