package dataset

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// wire is the serialized form of a dataset. Raw (de-normalized) values are
// stored so a round trip is independent of normalization details.
type wire struct {
	Version int
	Name    string
	N       int
	EdgeU   []int32
	EdgeV   []int32
	EdgeW   []float64
	Pts     []spatial.Point
	Located []bool
	// Labels is optional (nil = unlabeled dataset); gob omits/ignores the
	// field when absent, so labeled and unlabeled files interoperate across
	// binary versions without a wire version bump.
	Labels []uint64
}

const wireVersion = 1

// Save writes the dataset to w in gob encoding.
func (d *Dataset) Save(w io.Writer) error {
	n := d.NumUsers()
	msg := wire{
		Version: wireVersion,
		Name:    d.Name,
		N:       n,
		Pts:     make([]spatial.Point, n),
		Located: d.Located,
		Labels:  d.Labels,
	}
	for i, p := range d.Pts {
		msg.Pts[i] = spatial.Point{X: p.X * d.Norms.Spatial, Y: p.Y * d.Norms.Spatial}
	}
	for v := 0; v < n; v++ {
		nbrs, ws := d.G.Neighbors(graph.VertexID(v))
		for i, u := range nbrs {
			if u > graph.VertexID(v) {
				msg.EdgeU = append(msg.EdgeU, int32(v))
				msg.EdgeV = append(msg.EdgeV, u)
				msg.EdgeW = append(msg.EdgeW, ws[i]*d.Norms.Social)
			}
		}
	}
	return gob.NewEncoder(w).Encode(&msg)
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var msg wire
	if err := gob.NewDecoder(r).Decode(&msg); err != nil {
		return nil, fmt.Errorf("dataset: decoding: %w", err)
	}
	if msg.Version != wireVersion {
		return nil, fmt.Errorf("dataset: unsupported version %d", msg.Version)
	}
	if len(msg.EdgeU) != len(msg.EdgeV) || len(msg.EdgeU) != len(msg.EdgeW) {
		return nil, fmt.Errorf("dataset: corrupt edge arrays")
	}
	b := graph.NewBuilder(msg.N)
	for i := range msg.EdgeU {
		if err := b.AddEdge(msg.EdgeU[i], msg.EdgeV[i], msg.EdgeW[i]); err != nil {
			return nil, fmt.Errorf("dataset: edge %d: %w", i, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	ds, err := New(msg.Name, g, msg.Pts, msg.Located)
	if err != nil {
		return nil, err
	}
	if msg.Labels != nil {
		if err := ds.SetLabels(msg.Labels); err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
	}
	return ds, nil
}

// SaveFile writes the dataset to path.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(f)
	if err := d.Save(bw); err != nil {
		f.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(bufio.NewReader(f))
}
