// Package dataset glues the social and spatial substrates into one queryable
// geo-social dataset: the weighted social graph, per-user locations (with a
// located bitmap — the paper keeps users with unknown whereabouts
// "infinitely far away"), and the per-domain normalization constants that
// the ranking function divides by (§3.1).
//
// Normalization happens once, at construction: edge weights are divided by
// an estimate of the maximum pairwise graph distance (double-sweep
// pseudo-diameter) and coordinates by the bounding-box diagonal, so every
// downstream algorithm works with proximities in roughly [0, 1] and the
// ranking function is simply f = α·p + (1−α)·d.
package dataset

import (
	"fmt"
	"math"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

// Norms records the per-domain normalization constants so raw distances can
// be recovered (raw = normalized × constant).
type Norms struct {
	// Social is the double-sweep pseudo-diameter of the raw graph, a lower
	// bound on the true maximum pairwise distance.
	Social float64
	// Spatial is the diagonal of the bounding rectangle of raw locations.
	Spatial float64
}

// Dataset is an immutable-topology geo-social dataset. Locations may move
// (via the engine's update path); the graph does not change after
// construction.
type Dataset struct {
	Name    string
	G       *graph.Graph    // edge weights normalized by Norms.Social
	Pts     []spatial.Point // coordinates normalized by Norms.Spatial
	Located []bool
	// Labels holds an optional per-user attribute/topic bitmask (up to 64
	// labels, bit i = label i), fixed at construction like the graph
	// topology. Nil (or all-zero) means the dataset is unlabeled. A user
	// with a zero mask matches no nonzero query filter.
	Labels []uint64
	Norms  Norms
	bounds spatial.Rect // of normalized located points
}

// New builds a dataset from a raw graph and raw locations, normalizing both
// domains. pts[i] is meaningful only when located[i] is true.
func New(name string, g *graph.Graph, pts []spatial.Point, located []bool) (*Dataset, error) {
	n := g.NumVertices()
	if len(pts) != n || len(located) != n {
		return nil, fmt.Errorf("dataset: graph has %d vertices but %d points / %d flags", n, len(pts), len(located))
	}
	if n == 0 {
		return nil, fmt.Errorf("dataset: empty")
	}

	// Social normalization: double-sweep from the highest-degree vertex of
	// the raw graph (a cheap, stable pseudo-diameter).
	social := 1.0
	if g.NumEdges() > 0 {
		start, bestDeg := graph.VertexID(0), -1
		for v := 0; v < n; v++ {
			if d := g.Degree(graph.VertexID(v)); d > bestDeg {
				start, bestDeg = graph.VertexID(v), d
			}
		}
		if est := g.EstimateDiameter(start); est > 0 {
			social = est
		}
	}

	rawBounds, anyLocated := spatial.BoundingRect(pts, located)
	spatialNorm := 1.0
	if anyLocated {
		if diag := rawBounds.Diagonal(); diag > 0 {
			spatialNorm = diag
		}
	}

	normPts := make([]spatial.Point, n)
	for i, p := range pts {
		if located[i] {
			normPts[i] = spatial.Point{X: p.X / spatialNorm, Y: p.Y / spatialNorm}
		}
	}
	normLocated := append([]bool(nil), located...)

	ds := &Dataset{
		Name:    name,
		G:       g.ScaleWeights(1 / social),
		Pts:     normPts,
		Located: normLocated,
		Norms:   Norms{Social: social, Spatial: spatialNorm},
	}
	if anyLocated {
		ds.bounds, _ = spatial.BoundingRect(normPts, normLocated)
	} else {
		ds.bounds = spatial.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	return ds, nil
}

// Restrict returns a view of the dataset whose located set is the
// intersection of d's and keep: same graph, same normalized coordinates,
// same normalization constants and — critically — the same bounds, so grid
// layouts built over restrictions of one dataset share identical geometry
// and engines built over them score users identically. This is the substrate
// of spatial sharding: each shard owns a Restrict'ed view (its users
// located, everyone else "infinitely far away") while the social graph stays
// whole.
func (d *Dataset) Restrict(keep []bool) (*Dataset, error) {
	if len(keep) != d.NumUsers() {
		return nil, fmt.Errorf("dataset: restrict mask has %d entries for %d users", len(keep), d.NumUsers())
	}
	located := make([]bool, len(keep))
	for i, k := range keep {
		located[i] = k && d.Located[i]
	}
	r := *d
	r.Located = located
	return &r, nil
}

// SetLabels attaches a per-user label bitmask to the dataset. Like the
// graph topology, labels are fixed for the dataset's lifetime; engines read
// the slice without copying, so callers must not mutate it afterwards.
// Restrict'ed views share the same labels automatically.
func (d *Dataset) SetLabels(labels []uint64) error {
	if labels != nil && len(labels) != d.NumUsers() {
		return fmt.Errorf("dataset: %d label masks for %d users", len(labels), d.NumUsers())
	}
	d.Labels = labels
	return nil
}

// LabelsOf returns user u's label bitmask (0 when the dataset is unlabeled).
func (d *Dataset) LabelsOf(u int32) uint64 {
	if d.Labels == nil {
		return 0
	}
	return d.Labels[u]
}

// NumUsers returns the number of users (== graph vertices).
func (d *Dataset) NumUsers() int { return d.G.NumVertices() }

// NumLocated returns how many users have a known location.
func (d *Dataset) NumLocated() int {
	n := 0
	for _, l := range d.Located {
		if l {
			n++
		}
	}
	return n
}

// Bounds returns the bounding rectangle of the normalized located points.
// Grid layouts are built over a slightly padded version so border points
// stay strictly inside.
func (d *Dataset) Bounds() spatial.Rect { return d.bounds }

// PaddedBounds grows Bounds by a small margin on every side, guaranteeing a
// non-degenerate rectangle even for single-point datasets.
func (d *Dataset) PaddedBounds() spatial.Rect {
	b := d.bounds
	pad := 0.01 * math.Max(b.Width(), b.Height())
	if pad == 0 {
		pad = 0.5
	}
	return spatial.Rect{MinX: b.MinX - pad, MinY: b.MinY - pad, MaxX: b.MaxX + pad, MaxY: b.MaxY + pad}
}

// EuclideanDist returns the normalized spatial distance between two users,
// +Inf when either lacks a location (the paper's convention).
func (d *Dataset) EuclideanDist(a, b int32) float64 {
	if !d.Located[a] || !d.Located[b] {
		return math.Inf(1)
	}
	return d.Pts[a].Dist(d.Pts[b])
}

// Stats summarizes the dataset in the shape of the paper's Table 2.
type Stats struct {
	Name        string
	NumVertices int
	NumEdges    int
	NumLocated  int
	AvgDegree   float64
}

// Stats computes Table 2 statistics.
func (d *Dataset) Stats() Stats {
	return Stats{
		Name:        d.Name,
		NumVertices: d.G.NumVertices(),
		NumEdges:    d.G.NumEdges(),
		NumLocated:  d.NumLocated(),
		AvgDegree:   d.G.AvgDegree(),
	}
}
