package dataset

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
	"ssrq/internal/spatial"
)

func mkRaw(t *testing.T, rng *rand.Rand, n int) (*graph.Graph, []spatial.Point, []bool) {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		_ = b.AddEdge(graph.VertexID(rng.Intn(v)), graph.VertexID(v), 0.5+rng.Float64()*9.5)
	}
	g := b.MustBuild()
	pts := make([]spatial.Point, n)
	located := make([]bool, n)
	for i := range pts {
		pts[i] = spatial.Point{X: rng.Float64() * 500, Y: rng.Float64() * 500}
		located[i] = i%5 != 0
	}
	return g, pts, located
}

func TestNewValidation(t *testing.T) {
	g := graph.NewBuilder(3).MustBuild()
	if _, err := New("x", g, make([]spatial.Point, 2), make([]bool, 3)); err == nil {
		t.Fatal("mismatched points accepted")
	}
	if _, err := New("x", g, make([]spatial.Point, 3), make([]bool, 2)); err == nil {
		t.Fatal("mismatched flags accepted")
	}
	empty := graph.NewBuilder(0).MustBuild()
	if _, err := New("x", empty, nil, nil); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestNormalizationBringsDistancesNearUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, pts, located := mkRaw(t, rng, 120)
	ds, err := New("t", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Norms.Social <= 0 || ds.Norms.Spatial <= 0 {
		t.Fatalf("norms %+v", ds.Norms)
	}
	// Normalized spatial distances between located users fit in [0, 1].
	for i := 0; i < 120; i += 7 {
		for j := 0; j < 120; j += 11 {
			d := ds.EuclideanDist(int32(i), int32(j))
			if ds.Located[i] && ds.Located[j] {
				if d < 0 || d > 1+1e-9 {
					t.Fatalf("normalized distance %v out of [0,1]", d)
				}
			} else if !math.IsInf(d, 1) {
				t.Fatalf("unlocated pair distance %v, want +Inf", d)
			}
		}
	}
	// The double-sweep underestimates the diameter, so some normalized
	// graph distances may slightly exceed 1, but most should be ≤ ~2.
	dist := ds.G.DistancesFrom(0)
	for _, d := range dist {
		if d != graph.Infinity && d > 2.5 {
			t.Fatalf("normalized social distance %v far above 1", d)
		}
	}
}

func TestScaledGraphPreservesTopology(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, pts, located := mkRaw(t, rng, 50)
	ds, err := New("t", g, pts, located)
	if err != nil {
		t.Fatal(err)
	}
	if ds.G.NumEdges() != g.NumEdges() || ds.G.NumVertices() != g.NumVertices() {
		t.Fatal("normalization changed topology")
	}
	// Scaled weight × norm == raw weight.
	w1, _ := ds.G.EdgeWeight(0, 1)
	w0, ok := g.EdgeWeight(0, 1)
	if ok && math.Abs(w1*ds.Norms.Social-w0) > 1e-9 {
		t.Fatalf("weight scaling wrong: %v * %v != %v", w1, ds.Norms.Social, w0)
	}
}

func TestStats(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, pts, located := mkRaw(t, rng, 100)
	ds, _ := New("gowalla-like", g, pts, located)
	st := ds.Stats()
	if st.Name != "gowalla-like" || st.NumVertices != 100 || st.NumEdges != g.NumEdges() {
		t.Fatalf("stats %+v", st)
	}
	wantLocated := 0
	for _, l := range located {
		if l {
			wantLocated++
		}
	}
	if st.NumLocated != wantLocated {
		t.Fatalf("NumLocated = %d, want %d", st.NumLocated, wantLocated)
	}
	if math.Abs(st.AvgDegree-g.AvgDegree()) > 1e-12 {
		t.Fatal("AvgDegree mismatch")
	}
}

func TestPaddedBoundsContainPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g, pts, located := mkRaw(t, rng, 80)
	ds, _ := New("t", g, pts, located)
	pb := ds.PaddedBounds()
	for i, p := range ds.Pts {
		if ds.Located[i] && !pb.Contains(p) {
			t.Fatalf("padded bounds exclude point %d", i)
		}
	}
	b := ds.Bounds()
	if pb.MinX >= b.MinX || pb.MaxX <= b.MaxX {
		t.Fatal("padding did not grow bounds")
	}
}

func TestAllUnlocated(t *testing.T) {
	b := graph.NewBuilder(3)
	_ = b.AddEdge(0, 1, 1)
	_ = b.AddEdge(1, 2, 1)
	ds, err := New("t", b.MustBuild(), make([]spatial.Point, 3), make([]bool, 3))
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumLocated() != 0 {
		t.Fatal("phantom located users")
	}
	if !math.IsInf(ds.EuclideanDist(0, 1), 1) {
		t.Fatal("unlocated distance finite")
	}
	pb := ds.PaddedBounds()
	if !(pb.MaxX > pb.MinX && pb.MaxY > pb.MinY) {
		t.Fatal("degenerate padded bounds")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, pts, located := mkRaw(t, rng, 60)
	ds, _ := New("round", g, pts, located)

	var buf bytes.Buffer
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.Name != ds.Name || ds2.NumUsers() != ds.NumUsers() || ds2.G.NumEdges() != ds.G.NumEdges() {
		t.Fatalf("round trip mismatch: %+v vs %+v", ds2.Stats(), ds.Stats())
	}
	if math.Abs(ds2.Norms.Social-ds.Norms.Social) > 1e-9*ds.Norms.Social {
		t.Fatalf("social norm drifted: %v vs %v", ds2.Norms.Social, ds.Norms.Social)
	}
	for v := 0; v < 60; v++ {
		if ds2.Located[v] != ds.Located[v] {
			t.Fatalf("located flag %d drifted", v)
		}
		if ds.Located[v] {
			if ds.Pts[v].Dist(ds2.Pts[v]) > 1e-9 {
				t.Fatalf("point %d drifted", v)
			}
		}
	}
	// Graph distances must survive the round trip.
	d1 := ds.G.DistancesFrom(0)
	d2 := ds2.G.DistancesFrom(0)
	for v := range d1 {
		if math.Abs(d1[v]-d2[v]) > 1e-9 {
			t.Fatalf("distance %d drifted: %v vs %v", v, d1[v], d2[v])
		}
	}
	// An unlabeled dataset stays unlabeled through the round trip...
	if ds2.Labels != nil {
		t.Fatal("labels materialized out of nowhere")
	}
	// ...and a labeled one keeps its labels bit for bit.
	labels := make([]uint64, 60)
	for v := range labels {
		labels[v] = uint64(v) << uint(v%4)
	}
	if err := ds.SetLabels(labels); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := ds.Save(&buf); err != nil {
		t.Fatal(err)
	}
	ds3, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ds3.Labels == nil {
		t.Fatal("labels lost in round trip")
	}
	for v := range labels {
		if ds3.Labels[v] != labels[v] {
			t.Fatalf("label %d drifted: %#x vs %#x", v, ds3.Labels[v], labels[v])
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, pts, located := mkRaw(t, rng, 30)
	ds, _ := New("file", g, pts, located)
	path := t.TempDir() + "/ds.gob"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ds2, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if ds2.NumUsers() != 30 {
		t.Fatalf("loaded %d users", ds2.NumUsers())
	}
	if _, err := LoadFile(t.TempDir() + "/missing.gob"); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Fatal("garbage accepted")
	}
}
