package ssrq

import (
	"math"
	"math/rand"
	"testing"

	"ssrq/internal/graph"
)

// Differential crash tests: churn an engine, hard-stop its WAL mid-record
// (the in-process seam; see crash_kill_test.go for the real kill -9
// variant), recover, and require the recovered world and query results to
// exactly match an uninterrupted twin that applied the same logical prefix.

// crashOp is one deterministic driver operation, replayable on any engine.
type crashOp struct {
	kind int // 0 move, 1 remove location, 2 edge upsert, 3 edge remove
	id   UserID
	p    Point
	u, v UserID
	w    float64
}

func (op crashOp) apply(e *Engine) error {
	switch op.kind {
	case 0:
		return e.MoveUser(op.id, op.p)
	case 1:
		return e.RemoveUserLocation(op.id)
	case 2:
		return e.AddFriend(op.u, op.v, op.w)
	default:
		return e.RemoveFriend(op.u, op.v)
	}
}

// genCrashOps builds a deterministic mixed op stream over d (raw
// coordinates/weights, dense edge churn over a small pair population so
// upserts and removes actually collide).
func genCrashOps(d *Dataset, n int, seed int64) []crashOp {
	rnd := rand.New(rand.NewSource(seed))
	norm := d.Norms().Spatial
	users := d.NumUsers()
	edgePop := min(60, users)
	ops := make([]crashOp, 0, n)
	for i := 0; i < n; i++ {
		switch r := rnd.Float64(); {
		case r < 0.65:
			ops = append(ops, crashOp{
				kind: 0,
				id:   UserID(rnd.Intn(users)),
				p:    Point{X: rnd.Float64() * norm, Y: rnd.Float64() * norm},
			})
		case r < 0.75:
			ops = append(ops, crashOp{kind: 1, id: UserID(rnd.Intn(users))})
		case r < 0.9:
			u := UserID(rnd.Intn(edgePop))
			v := UserID(rnd.Intn(edgePop))
			if u == v {
				v = (v + 1) % UserID(edgePop)
			}
			ops = append(ops, crashOp{kind: 2, u: u, v: v, w: 0.1 + rnd.Float64()})
		default:
			u := UserID(rnd.Intn(edgePop))
			v := UserID(rnd.Intn(edgePop))
			if u == v {
				v = (v + 1) % UserID(edgePop)
			}
			ops = append(ops, crashOp{kind: 3, u: u, v: v})
		}
	}
	return ops
}

var crashAlgos = []Algorithm{SFA, SPA, TSA, TSAQC, AIS, AISCache, BruteForce}

// requireSameWorld asserts bit-identical locations and social graphs.
func requireSameWorld(t *testing.T, got, want *Engine) {
	t.Helper()
	n := got.d.NumUsers()
	for id := 0; id < n; id++ {
		pg, okg := got.eng.UserLocation(int32(id))
		pw, okw := want.eng.UserLocation(int32(id))
		if okg != okw || (okg && pg != pw) {
			t.Fatalf("user %d: recovered location (%v,%v) != twin (%v,%v)", id, pg, okg, pw, okw)
		}
	}
	gg, gw := got.eng.LiveSocialGraph(), want.eng.LiveSocialGraph()
	if gg.NumEdges() != gw.NumEdges() {
		t.Fatalf("edge count: recovered %d != twin %d", gg.NumEdges(), gw.NumEdges())
	}
	for u := 0; u < n; u++ {
		vs, ws := gg.Neighbors(graph.VertexID(u))
		for j, v := range vs {
			if w, ok := gw.EdgeWeight(graph.VertexID(u), v); !ok || w != ws[j] {
				t.Fatalf("edge (%d,%d): recovered weight %v, twin (%v,%v)", u, v, ws[j], w, ok)
			}
		}
	}
}

// requireSameResults asserts exact query equivalence across algorithms.
func requireSameResults(t *testing.T, got, want *Engine, seed int64) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	n := got.d.NumUsers()
	var queried int
	for attempts := 0; queried < 8 && attempts < 10*n; attempts++ {
		q := UserID(rnd.Intn(n))
		if _, ok := got.eng.UserLocation(q); !ok {
			continue
		}
		queried++
		for _, algo := range crashAlgos {
			rg, eg := got.TopKWith(algo, q, 10, 0.4)
			rw, ew := want.TopKWith(algo, q, 10, 0.4)
			if (eg == nil) != (ew == nil) {
				t.Fatalf("algo %v q=%d: recovered err=%v twin err=%v", algo, q, eg, ew)
			}
			if eg != nil {
				continue
			}
			if len(rg.Entries) != len(rw.Entries) {
				t.Fatalf("algo %v q=%d: %d vs %d entries", algo, q, len(rg.Entries), len(rw.Entries))
			}
			for i := range rg.Entries {
				a, b := rg.Entries[i], rw.Entries[i]
				if math.Abs(a.F-b.F) > 1e-12 {
					t.Fatalf("algo %v q=%d rank %d: F %v vs %v", algo, q, i, a.F, b.F)
				}
				if a.ID != b.ID && math.Abs(a.F-b.F) > 1e-12 {
					t.Fatalf("algo %v q=%d rank %d: ID %d vs %d", algo, q, i, a.ID, b.ID)
				}
			}
		}
	}
	if queried == 0 {
		t.Fatal("no located query users found")
	}
}

// TestCrashRecoveryDifferentialSync drives synchronous ops (one WAL record
// each), tears the log mid-record at an arbitrary byte, recovers, and
// compares against a twin that applied exactly the recovered prefix of the
// driver stream — monolithic and sharded.
func TestCrashRecoveryDifferentialSync(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"monolith", 0}, {"sharded", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := Synthesize("gowalla", 400, 42)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			opts := &Options{Shards: tc.shards, Durability: &DurabilityOptions{Dir: dir, Fsync: "off"}}
			eng, err := NewEngine(ds, opts)
			if err != nil {
				t.Fatal(err)
			}

			ops := genCrashOps(ds, 600, 7)
			const before = 400 // ops applied before the seam arms
			for _, op := range ops[:before] {
				if err := op.apply(eng); err != nil {
					t.Fatal(err)
				}
			}
			// Arm the seam at an arbitrary byte offset into the remaining
			// stream: some op's record tears mid-write, everything after
			// vanishes — the page-cache suffix a dead process loses.
			eng.TestingWAL().TestingLimitBytes(int64(rand.New(rand.NewSource(3)).Intn(2000)))
			for _, op := range ops[before:] {
				if err := op.apply(eng); err != nil {
					t.Fatal(err)
				}
			}
			if !eng.TestingWAL().Crashed() {
				t.Fatal("crash seam never tripped")
			}
			eng.Close() // the crashed log ignores the shutdown's writes

			rec, info, err := OpenOrRecover(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			applied := int(info.LastSeq)
			if applied < before || applied >= len(ops) {
				t.Fatalf("recovered %d ops, want within [%d,%d)", applied, before, len(ops))
			}
			if info.TruncatedBytes == 0 {
				t.Fatal("expected a torn tail")
			}

			twin, err := NewEngine(ds, &Options{Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()
			// Sync ops journal exactly one record each, so log position ==
			// driver prefix length.
			for _, op := range ops[:applied] {
				if err := op.apply(twin); err != nil {
					t.Fatal(err)
				}
			}
			requireSameWorld(t, rec, twin)
			requireSameResults(t, rec, twin, 99)
		})
	}
}

// TestCrashRecoveryAsyncChurn mixes async and sync mutation (so the WAL
// stream is the post-coalesce application order, not the driver order),
// crashes, recovers, and compares against a twin built by replaying the
// recovered WAL itself — the log must be a faithful, replayable history of
// whatever was applied.
func TestCrashRecoveryAsyncChurn(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
	}{{"monolith", 0}, {"sharded", 3}} {
		t.Run(tc.name, func(t *testing.T) {
			ds, err := Synthesize("gowalla", 400, 43)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			opts := &Options{Shards: tc.shards, Durability: &DurabilityOptions{Dir: dir, Fsync: "off"}}
			eng, err := NewEngine(ds, opts)
			if err != nil {
				t.Fatal(err)
			}

			ops := genCrashOps(ds, 800, 11)
			for i, op := range ops {
				var err error
				switch {
				case op.kind == 0 && i%2 == 0:
					err = eng.MoveUserAsync(op.id, op.p)
				case op.kind == 1 && i%2 == 0:
					err = eng.RemoveUserLocationAsync(op.id)
				default:
					err = op.apply(eng)
				}
				if err != nil {
					t.Fatal(err)
				}
				if i == 500 {
					eng.Flush()
					eng.TestingWAL().TestingLimitBytes(1500)
				}
			}
			eng.Flush()
			if !eng.TestingWAL().Crashed() {
				t.Fatal("crash seam never tripped")
			}
			floor := eng.WALDurableSeq()
			eng.Close()

			rec, info, err := OpenOrRecover(ds, opts)
			if err != nil {
				t.Fatal(err)
			}
			defer rec.Close()
			if info.LastSeq < floor {
				t.Fatalf("recovered seq %d below pre-crash floor %d", info.LastSeq, floor)
			}
			// The twin replays the recovered journal: recovery and replay
			// must converge on the same world.
			recs, last, err := rec.WALRecords(1, 1<<30)
			if err != nil {
				t.Fatal(err)
			}
			if last != info.LastSeq || len(recs) != int(last) {
				t.Fatalf("journal read %d recs last=%d, recovery says %d", len(recs), last, info.LastSeq)
			}
			twin, err := NewEngine(ds, &Options{Shards: tc.shards})
			if err != nil {
				t.Fatal(err)
			}
			defer twin.Close()
			if err := twin.ApplyWALRecords(recs); err != nil {
				t.Fatal(err)
			}
			requireSameWorld(t, rec, twin)
			requireSameResults(t, rec, twin, 17)
		})
	}
}

// TestCheckpointRecoveryEquivalence exercises the checkpoint path: churn
// with periodic background checkpoints (history retained), crash, recover
// (checkpoint + tail), and require equivalence with a twin that replayed
// the FULL journal from sequence 1 — checkpoint-based recovery must be
// indistinguishable from full replay.
func TestCheckpointRecoveryEquivalence(t *testing.T) {
	ds, err := Synthesize("gowalla", 400, 44)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := &Options{Durability: &DurabilityOptions{
		Dir: dir, Fsync: "off", CheckpointEveryOps: 150, KeepSegments: true,
	}}
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	ops := genCrashOps(ds, 700, 13)
	for i, op := range ops {
		if err := op.apply(eng); err != nil {
			t.Fatal(err)
		}
		if i == 600 {
			// Also take an explicit checkpoint mid-stream.
			if err := eng.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			eng.TestingWAL().TestingLimitBytes(900)
		}
	}
	eng.Close()

	rec, info, err := OpenOrRecover(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	if info.CheckpointSeq == 0 {
		t.Fatal("no checkpoint was used — test exercised nothing")
	}
	if info.CheckpointSeq > info.LastSeq {
		t.Fatalf("checkpoint %d beyond last seq %d", info.CheckpointSeq, info.LastSeq)
	}

	recs, last, err := rec.WALRecords(1, 1<<30)
	if err != nil {
		t.Fatal(err)
	}
	if last != info.LastSeq {
		t.Fatalf("full journal last=%d, recovery says %d", last, info.LastSeq)
	}
	twin, err := NewEngine(ds, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer twin.Close()
	if err := twin.ApplyWALRecords(recs); err != nil {
		t.Fatal(err)
	}
	requireSameWorld(t, rec, twin)
	requireSameResults(t, rec, twin, 23)
}

// TestRecoveredEngineServesSubscriptions verifies the subscription layer
// composes with recovery: a recovered engine accepts standing queries and
// pushes deltas for post-recovery churn.
func TestRecoveredEngineServesSubscriptions(t *testing.T) {
	ds, err := Synthesize("gowalla", 300, 45)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	opts := &Options{Durability: &DurabilityOptions{Dir: dir, Fsync: "off"}}
	eng, err := NewEngine(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range genCrashOps(ds, 200, 5) {
		if err := op.apply(eng); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()

	rec, _, err := OpenOrRecover(ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	var q UserID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if _, ok := rec.eng.UserLocation(UserID(v)); ok {
			q = UserID(v)
			break
		}
	}
	if q < 0 {
		t.Fatal("no located user")
	}
	s, err := rec.Subscribe(q, 5, 0.4)
	if err != nil {
		t.Fatalf("subscribe on recovered engine: %v", err)
	}
	res := s.Result()
	want, err := rec.TopKWith(BruteForce, q, 5, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(want.Entries) {
		t.Fatalf("subscription %d entries, brute force %d", len(res), len(want.Entries))
	}
	for i := range res {
		if math.Abs(res[i].F-want.Entries[i].F) > 1e-9 {
			t.Fatalf("rank %d: %v vs %v", i, res[i].F, want.Entries[i].F)
		}
	}
}
