// Friend recommendation: a social-leaning SSRQ over a dense Twitter-like
// network, using the §5.4 pre-computation so repeat queries answer from the
// cached social lists. Compares the algorithms' work on the same query.
package main

import (
	"fmt"
	"log"

	"ssrq"
)

func main() {
	ds, err := ssrq.Synthesize("twitter", 4000, 7)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{CacheT: 500})
	if err != nil {
		log.Fatal(err)
	}

	me := ssrq.UserID(100)
	// Materialize the pre-computed social list for our user (the paper's
	// offline step), then recommend with a social-heavy alpha: friends of
	// friends who also happen to be geographically reachable.
	eng.Precompute([]ssrq.UserID{me})
	res, err := eng.TopKWith(ssrq.AISCache, me, 8, 0.7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friend recommendations for user %d (alpha=0.7):\n", me)
	for i, e := range res.Entries {
		fmt.Printf("  %d. user %-6d f=%.4f (social %.4f, spatial %.4f)\n", i+1, e.ID, e.F, e.P, e.D)
	}
	if res.Stats.FellBack {
		fmt.Println("  (cache list exhausted; fell back to AIS)")
	} else {
		fmt.Printf("  answered from the pre-computed list: %d entries read\n", res.Stats.CacheHits)
	}

	// How much graph work does each algorithm spend on the same question?
	fmt.Println("\nwork comparison (same query):")
	for _, algo := range []ssrq.Algorithm{ssrq.SFA, ssrq.SPA, ssrq.TSA, ssrq.AIS} {
		r, err := eng.TopKWith(algo, me, 8, 0.7)
		if err != nil {
			log.Fatal(err)
		}
		s := r.Stats
		fmt.Printf("  %-7v social pops=%-6d spatial pops=%-6d index pops=%-5d pop ratio=%.3f\n",
			algo, s.SocialPops, s.SpatialPops, s.IndexUserPops, s.PopRatio(ds.NumUsers()))
	}
}
