// Moving users: SSRQ over dynamic locations. The grid and the AIS social
// summaries maintain themselves under location updates (§5.1: deletion from
// the old cell, insertion into the new one, recursive summary propagation),
// so queries stay exact while users move.
package main

import (
	"fmt"
	"log"

	"ssrq"
)

func main() {
	ds, err := ssrq.Synthesize("foursquare", 3000, 31)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, nil)
	if err != nil {
		log.Fatal(err)
	}

	var me ssrq.UserID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located(ssrq.UserID(v)) {
			me = ssrq.UserID(v)
			break
		}
	}
	home, _ := ds.Location(me)
	fmt.Printf("user %d at home (%.3f, %.3f):\n", me, home.X, home.Y)
	before, err := eng.TopK(me, 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	print5(before)

	// Commute across the map: move to the opposite corner and re-query.
	away := ssrq.Point{X: home.X + 0.4*ds.Norms().Spatial, Y: home.Y + 0.4*ds.Norms().Spatial}
	eng.MoveUser(me, away)
	fmt.Printf("\nafter moving to (%.3f, %.3f):\n", away.X, away.Y)
	after, err := eng.TopK(me, 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	print5(after)

	// Friends keep moving too; every update keeps the index exact.
	moved := 0
	for v := 0; v < ds.NumUsers() && moved < 500; v++ {
		id := ssrq.UserID(v)
		if p, ok := ds.Location(id); ok && id != me {
			eng.MoveUser(id, ssrq.Point{X: p.X * 0.95, Y: p.Y * 0.95})
			moved++
		}
	}
	fmt.Printf("\nafter %d other users moved:\n", moved)
	final, err := eng.TopK(me, 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	print5(final)

	// Sanity: the index-based answer still matches brute force.
	want, _ := eng.TopKWith(ssrq.BruteForce, me, 5, 0.3)
	for i := range final.Entries {
		if final.Entries[i].F != want.Entries[i].F {
			log.Fatalf("index drifted from brute force at rank %d", i)
		}
	}
	fmt.Println("\nindex verified against brute force after all updates ✓")
}

func print5(r *ssrq.Result) {
	for i, e := range r.Entries {
		fmt.Printf("  %d. user %-6d f=%.4f (social %.4f, spatial %.4f)\n", i+1, e.ID, e.F, e.P, e.D)
	}
}
