// Moving users: continuous SSRQ over dynamic locations. Instead of
// re-querying after every change, the example registers a standing top-k
// subscription: the engine watches each published epoch, proves via the
// batch's touched-user set and Lemma-2 lower bounds when the result cannot
// have changed (skipped silently), and pushes incremental deltas — entries
// that entered the top-k, left it, or changed score — only otherwise.
// Bulk movement goes through the async pipeline (MoveUserAsync + Flush),
// which coalesces redundant moves and amortizes hundreds of updates into a
// handful of copy-on-write epochs, instead of paying one epoch per
// synchronous MoveUser call.
package main

import (
	"fmt"
	"log"

	"ssrq"
)

func main() {
	ds, err := ssrq.Synthesize("foursquare", 3000, 31)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	var me ssrq.UserID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located(ssrq.UserID(v)) {
			me = ssrq.UserID(v)
			break
		}
	}

	// Stand up the subscription; it blocks until the initial top-5 is
	// evaluated, and the first delta is the full result.
	sub, err := eng.Subscribe(me, 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	home, _ := ds.Location(me)
	fmt.Printf("user %d at home (%.3f, %.3f):\n", me, home.X, home.Y)
	printDelta(sub.Delta())

	// Commute across the map. A rejected move (NaN / out-of-range user)
	// would silently leave the subscription serving stale results, so the
	// error must be checked.
	away := ssrq.Point{X: home.X + 0.4*ds.Norms().Spatial, Y: home.Y + 0.4*ds.Norms().Spatial}
	if err := eng.MoveUser(me, away); err != nil {
		log.Fatal(err)
	}
	eng.SyncSubscriptions()
	fmt.Printf("\nafter moving to (%.3f, %.3f):\n", away.X, away.Y)
	printDelta(sub.Delta())

	// Friends keep moving too — enqueue the whole wave on the batching
	// pipeline and flush once, rather than paying one published epoch per
	// synchronous MoveUser.
	moved := 0
	for v := 0; v < ds.NumUsers() && moved < 500; v++ {
		id := ssrq.UserID(v)
		if p, ok := ds.Location(id); ok && id != me {
			if err := eng.MoveUserAsync(id, ssrq.Point{X: p.X * 0.95, Y: p.Y * 0.95}); err != nil {
				log.Fatal(err)
			}
			moved++
		}
	}
	eng.SyncSubscriptions() // flush the pipeline + subscription barrier
	fmt.Printf("\nafter %d other users moved:\n", moved)
	printDelta(sub.Delta())

	// Sanity: the standing result still matches a from-scratch brute-force
	// query after all updates.
	final := sub.Result()
	want, err := eng.TopKWith(ssrq.BruteForce, me, 5, 0.3)
	if err != nil {
		log.Fatal(err)
	}
	if len(final) != len(want.Entries) {
		log.Fatalf("subscription has %d entries, brute force %d", len(final), len(want.Entries))
	}
	for i := range final {
		if final[i].F != want.Entries[i].F {
			log.Fatalf("subscription drifted from brute force at rank %d", i)
		}
	}
	st := eng.SubscriptionStats()
	fmt.Printf("\nsubscription verified against brute force ✓ (%d evals, %d skips)\n", st.Evals, st.Skips)
}

// printDelta shows one incremental update the way an SSE consumer would
// render it.
func printDelta(d ssrq.SubscriptionDelta) {
	if d.Empty() {
		fmt.Println("  (no change — epoch proven unable to affect the top-k)")
		return
	}
	for _, e := range d.Added {
		fmt.Printf("  + user %-6d f=%.4f (social %.4f, spatial %.4f)\n", e.ID, e.F, e.P, e.D)
	}
	for _, e := range d.Rescored {
		fmt.Printf("  ~ user %-6d f=%.4f (social %.4f, spatial %.4f)\n", e.ID, e.F, e.P, e.D)
	}
	for _, id := range d.Removed {
		fmt.Printf("  - user %d left the top-k\n", id)
	}
}
