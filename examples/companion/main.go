// Companion search: the paper's motivating badoo.com scenario (§1). A user
// looking for a lunch companion sweeps the preference parameter α and sees
// how recommendations shift from "whoever is nearby" to "whoever is close in
// the social network" — and why neither extreme is what he/she wants.
package main

import (
	"fmt"
	"log"

	"ssrq"
)

func main() {
	// A synthetic city of 5,000 users in the Gowalla profile (clustered
	// districts, 54% of users sharing their location).
	ds, err := ssrq.Synthesize("gowalla", 5000, 2024)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, nil)
	if err != nil {
		log.Fatal(err)
	}

	// Pick the first located user as the one searching for company.
	var me ssrq.UserID = -1
	for v := 0; v < ds.NumUsers(); v++ {
		if ds.Located(ssrq.UserID(v)) {
			me = ssrq.UserID(v)
			break
		}
	}
	loc, _ := ds.Location(me)
	fmt.Printf("user %d is at (%.3f, %.3f) and wants company for lunch\n\n", me, loc.X, loc.Y)

	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		res, err := eng.TopK(me, 5, alpha)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("alpha=%.1f (%s):\n", alpha, describe(alpha))
		for i, e := range res.Entries {
			fmt.Printf("  %d. user %-6d f=%.4f  social=%.4f spatial=%.4f\n", i+1, e.ID, e.F, e.P, e.D)
		}
		fmt.Println()
	}

	// The paper's Fig. 7b point: the joint ranking is a genuinely different
	// query from either one-domain search.
	res, _ := eng.TopK(me, 10, 0.5)
	spatialNN, _ := eng.SpatialKNN(me, 10)
	socialNN := eng.SocialKNN(me, 10)
	fmt.Printf("overlap of SSRQ top-10 with spatial kNN: %d/10\n", overlap(res.Entries, spatialNN))
	fmt.Printf("overlap of SSRQ top-10 with social kNN:  %d/10\n", overlap(res.Entries, socialNN))
}

func describe(alpha float64) string {
	switch {
	case alpha < 0.3:
		return "mostly spatial: whoever is around"
	case alpha > 0.7:
		return "mostly social: closest friends-of-friends"
	default:
		return "balanced"
	}
}

func overlap(a, b []ssrq.Entry) int {
	set := map[ssrq.UserID]bool{}
	for _, e := range a {
		set[e.ID] = true
	}
	n := 0
	for _, e := range b {
		if set[e.ID] {
			n++
		}
	}
	return n
}
