// Quickstart: build a small geo-social dataset, ask one SSRQ, and inspect
// how the ranking mixes social and spatial proximity.
package main

import (
	"fmt"
	"log"

	"ssrq"
)

func main() {
	// A hand-built seven-user network. Weights are friendship strengths
	// (smaller = stronger); locations are street coordinates in meters.
	edges := []ssrq.Edge{
		{U: 0, V: 1, Weight: 0.2}, // close friends
		{U: 0, V: 2, Weight: 0.9},
		{U: 1, V: 3, Weight: 0.3},
		{U: 2, V: 3, Weight: 0.4},
		{U: 3, V: 4, Weight: 0.2},
		{U: 4, V: 5, Weight: 0.7},
		{U: 2, V: 6, Weight: 0.5},
	}
	locations := map[ssrq.UserID]ssrq.Point{
		0: {X: 0, Y: 0}, // the query user
		1: {X: 900, Y: 100},
		2: {X: 150, Y: 120},
		3: {X: 400, Y: 350},
		4: {X: 120, Y: 80},
		5: {X: 60, Y: 40}, // spatially nearest, socially distant
		6: {X: 1000, Y: 900},
	}
	ds, err := ssrq.NewDataset("demo", 7, edges, locations)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := ssrq.NewEngine(ds, &ssrq.Options{GridS: 2, GridLevels: 1, NumLandmarks: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Balance social and spatial proximity.
	res, err := eng.TopK(0, 3, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-3 companions for user 0 (alpha = 0.5):")
	for i, e := range res.Entries {
		fmt.Printf("  %d. user %d   f=%.3f  (social %.3f, spatial %.3f)\n", i+1, e.ID, e.F, e.P, e.D)
	}

	// Contrast with the two one-domain rankings the paper's introduction
	// argues against.
	spatial, _ := eng.SpatialKNN(0, 3)
	social := eng.SocialKNN(0, 3)
	fmt.Print("\npure spatial kNN: ")
	for _, e := range spatial {
		fmt.Printf("%d ", e.ID)
	}
	fmt.Print("\npure social kNN:  ")
	for _, e := range social {
		fmt.Printf("%d ", e.ID)
	}
	fmt.Println()
}
